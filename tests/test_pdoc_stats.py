"""Tests for p-document statistics."""

from __future__ import annotations

import math
import random
from fractions import Fraction

from repro.pdoc.enumerate import world_distribution
from repro.pdoc.pdocument import PNode, pdocument
from repro.pdoc.stats import (
    document_size_distribution,
    expected_document_size,
    process_entropy,
    summary,
    world_count,
)
from repro.workloads.random_gen import random_pdocument


def small_pdoc():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    mux = root.mux()
    mux.add_edge("b", Fraction(1, 4))
    mux.add_edge("c", Fraction(1, 4))
    pd.validate()
    return pd


def test_expected_size_by_hand():
    pd = small_pdoc()
    # 1 (root) + 1/2 (a) + 1/4 + 1/4 (b, c)
    assert expected_document_size(pd) == 2


def test_expected_size_matches_enumeration():
    rng = random.Random(4)
    for _ in range(20):
        pd = random_pdocument(rng, allow_exp=True)
        dist = world_distribution(pd)
        reference = sum(Fraction(len(uids)) * p for uids, p in dist.items())
        assert expected_document_size(pd) == reference


def test_size_distribution_matches_enumeration():
    rng = random.Random(5)
    for _ in range(20):
        pd = random_pdocument(rng, allow_exp=True)
        dist = document_size_distribution(pd)
        assert sum(dist.values()) == 1
        reference: dict[int, Fraction] = {}
        for uids, p in world_distribution(pd).items():
            reference[len(uids)] = reference.get(len(uids), Fraction(0)) + p
        assert dist == reference


def test_size_distribution_mean_consistency():
    pd = small_pdoc()
    dist = document_size_distribution(pd)
    mean = sum(Fraction(size) * p for size, p in dist.items())
    assert mean == expected_document_size(pd)


def test_world_count_flat_exact():
    pd = small_pdoc()
    # ind: 2 outcomes; mux: b, c or neither = 3 outcomes
    assert world_count(pd) == 6
    assert len(world_distribution(pd)) == 6


def test_world_count_is_upper_bound_with_stacking():
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1, 2))
    inner.add_edge("x", Fraction(1, 2))
    pd.validate()
    assert world_count(pd) == 4
    assert len(world_distribution(pd)) == 2  # collisions merge worlds


def test_entropy_deterministic_is_zero():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1))
    ind.add_edge("b", Fraction(0))
    pd.validate()
    assert process_entropy(pd) == 0.0


def test_entropy_fair_coin_is_one_bit():
    pd, root = pdocument("r")
    root.ind().add_edge("a", Fraction(1, 2))
    pd.validate()
    assert math.isclose(process_entropy(pd), 1.0)


def test_entropy_weights_by_reachability():
    # An inner fair coin behind a 1/2 edge contributes only 1/2 bit.
    pd, root = pdocument("r")
    outer = root.ind()
    mid = PNode("ord", "m")
    outer.add_edge(mid, Fraction(1, 2))
    mid.ind().add_edge("x", Fraction(1, 2))
    pd.validate()
    assert math.isclose(process_entropy(pd), 1.0 + 0.5)


def test_summary_fields():
    pd = small_pdoc()
    report = summary(pd)
    assert report["ordinary_nodes"] == 4
    assert report["distributional_nodes"] == 2
    assert report["distributional_edges"] == 3
    assert report["assignment_outcomes"] == 6
    assert report["expected_size"] == 2
    assert report["min_size"] == 1 and report["max_size"] == 3
    assert report["process_entropy_bits"] > 0
