"""Shared fixtures: the paper's running example and small reference trees,
plus the golden-snapshot machinery (``--update-golden``)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.workloads.university import (
    Figure1,
    figure1_constraints,
    figure2_document,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current outputs "
        "instead of comparing against them",
    )


@pytest.fixture()
def golden(request):
    """Compare a JSON-ready payload against tests/golden/<name>.json.

    With ``--update-golden`` the snapshot is rewritten instead; the diff
    then goes through code review like any other change."""

    def check(name: str, payload) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if request.config.getoption("--update-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(rendered)
            return
        assert path.exists(), (
            f"missing golden snapshot {path}; run "
            f"`pytest {request.node.nodeid} --update-golden` to create it"
        )
        assert json.loads(path.read_text()) == json.loads(rendered), (
            f"output differs from golden snapshot {path} "
            f"(re-run with --update-golden if the change is intended)"
        )

    return check


@pytest.fixture(scope="session")
def figure1() -> Figure1:
    """The Figure 1 p-document with handles to its interesting nodes."""
    return Figure1()


@pytest.fixture(scope="session")
def constraints_c1_c4():
    """C = {C1, C2, C3, C4} of Example 2.3."""
    return figure1_constraints()


@pytest.fixture()
def figure2():
    """The Figure 2 instance (a fresh copy per test: documents are mutable)."""
    return figure2_document()
