"""Shared fixtures: the paper's running example and small reference trees."""

from __future__ import annotations

import pytest

from repro.workloads.university import (
    Figure1,
    figure1_constraints,
    figure2_document,
)


@pytest.fixture(scope="session")
def figure1() -> Figure1:
    """The Figure 1 p-document with handles to its interesting nodes."""
    return Figure1()


@pytest.fixture(scope="session")
def constraints_c1_c4():
    """C = {C1, C2, C3, C4} of Example 2.3."""
    return figure1_constraints()


@pytest.fixture()
def figure2():
    """The Figure 2 instance (a fresh copy per test: documents are mutable)."""
    return figure2_document()
