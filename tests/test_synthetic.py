"""Tests for the synthetic workload generators."""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.evaluator import probability
from repro.core.formulas import CountAtom, SFormula, exists
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.workloads.synthetic import (
    binary_pdocument,
    chain_pdocument,
    exp_pdocument,
    numeric_pdocument,
    star_pdocument,
)
from repro.xmltree.parser import parse_boolean_pattern, parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def test_chain_shape_and_probability():
    pd = chain_pdocument(depth=5, prob=Fraction(1, 2))
    assert pd.ordinary_size() == 6
    assert len(pd.dist_edges()) == 5
    # all five levels present with probability (1/2)^5
    deep = CountAtom([sel("root//$a")], "=", 5)
    assert probability(pd, deep) == Fraction(1, 32)


def test_star_shape():
    pd = star_pdocument(width=10, prob=Fraction(1, 10))
    assert pd.ordinary_size() == 11
    none = CountAtom([sel("root/$a")], "=", 0)
    assert probability(pd, none) == Fraction(9, 10) ** 10


def test_binary_tree_validates_and_evaluates():
    pd = binary_pdocument(depth=4, seed=3)
    assert pd.ordinary_size() > 1
    f = exists(parse_boolean_pattern("root//L"))
    value = probability(pd, f)
    assert 0 < value < 1


def test_numeric_workload():
    pd = numeric_pdocument(width=6, value_range=5, seed=2)
    from repro.xmltree.predicates import is_numeric_label

    numeric = [n for n in pd.ordinary_nodes() if is_numeric_label(n.label)]
    assert len(numeric) == 6


def test_exp_workload_correlation():
    pd = exp_pdocument(groups=2, seed=4)
    pd.validate()
    # children 0 and 1 of each group are perfectly correlated
    from repro.pdoc.enumerate import world_distribution

    exp_nodes = [n for n in pd.distributional_nodes()]
    for exp in exp_nodes:
        a, b = exp.children[0], exp.children[1]
        for uids, p in world_distribution(pd).items():
            if p > 0:
                assert (a.uid in uids) == (b.uid in uids)


def test_random_generators_produce_valid_instances():
    rng = random.Random(10)
    for _ in range(30):
        pd = random_pdocument(rng, allow_exp=True, numeric=True)
        pd.validate()
        formula = random_formula(rng, allow_minmax=True)
        value = probability(pd, formula)
        assert 0 <= value <= 1
