"""Tests for the schema-driven scenario matrix (repro.workloads.scenarios).

Covers the declared axes, generator determinism, emission validation
(structured GenerationError naming the offending axis), constraint
satisfiability, the pairwise coverage ledger, and the shipped standard
matrix's coverage floor.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.constraints import constraints_formula
from repro.core.evaluator import probability
from repro.core.formulas import AvgAtom, SumAtom
from repro.pdoc.pdocument import EXP, IND, MUX, ORD, PDocument, PNode
from repro.pdoc.serialize import pdocument_to_xml
from repro.workloads.scenarios import (
    AXES,
    CoverageLedger,
    GenerationError,
    ScenarioSpec,
    all_pairs,
    check_emitted,
    generate,
    matrix_instances,
    pairs_of,
    standard_matrix,
)


# -- axes and specs -----------------------------------------------------------

def test_every_axis_declares_at_least_two_values():
    for axis, values in AXES.items():
        assert len(values) >= 2, axis
        assert len(set(values)) == len(values), axis


def test_spec_rejects_unknown_axis_value_naming_the_axis():
    with pytest.raises(GenerationError) as excinfo:
        ScenarioSpec(mass="gaussian")
    assert excinfo.value.axis == "mass"
    assert "gaussian" in str(excinfo.value)


def test_spec_from_dict_rejects_unknown_axis():
    with pytest.raises(GenerationError) as excinfo:
        ScenarioSpec.from_dict({"kinds": "ind", "shape": "torus"})
    assert excinfo.value.axis == "shape"


def test_spec_round_trips_through_dict():
    spec = ScenarioSpec(kinds="exp", mass="extreme", aggregate="sum")
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_simplified_resets_one_axis_to_the_first_value():
    spec = ScenarioSpec(kinds="mixed", depth="deep")
    assert spec.simplified("kinds") == ScenarioSpec(depth="deep")
    assert spec.simplified("kinds").kinds == AXES["kinds"][0]


# -- generator determinism and validity ---------------------------------------

def test_generate_is_deterministic():
    spec = ScenarioSpec(kinds="mixed", depth="deep", fanout="wide",
                        mass="reestimated", constraint="implication",
                        aggregate="ratio")
    first = generate(spec, 42)
    second = generate(spec, 42)
    assert pdocument_to_xml(first.pdoc) == pdocument_to_xml(second.pdoc)
    assert repr(first.constraints) == repr(second.constraints)
    assert repr(first.dp_events) == repr(second.dp_events)
    assert repr(first.hard_events) == repr(second.hard_events)


def test_different_seeds_vary_the_instance():
    spec = ScenarioSpec(kinds="mixed", depth="deep", fanout="wide",
                        mass="reestimated")
    xmls = {pdocument_to_xml(generate(spec, seed).pdoc) for seed in range(6)}
    assert len(xmls) > 1


@pytest.mark.parametrize("spec", standard_matrix(), ids=lambda s: s.name)
def test_standard_matrix_instances_are_valid(spec):
    instance = generate(spec, seed=3)
    instance.pdoc.validate()
    check_emitted(instance.pdoc, spec, 3)
    # Constraint sets keep the PXDB well-defined.
    condition = constraints_formula(instance.constraints)
    assert probability(instance.pdoc, condition) > 0
    assert instance.dp_events


def test_generated_probabilities_stay_in_half_open_unit_interval():
    for spec in standard_matrix()[:8]:
        instance = generate(spec, seed=11)
        for node in instance.pdoc.nodes():
            for prob in node.probs:
                assert 0 < prob <= 1
            for _, weight in node.subsets:
                assert 0 < weight <= 1


def test_kinds_axis_is_honored():
    for kind in ("ind", "mux", "exp"):
        spec = ScenarioSpec(kinds=kind, depth="deep", fanout="wide")
        instance = generate(spec, seed=1)
        dist_kinds = {
            node.kind
            for node in instance.pdoc.nodes()
            if node.kind != ORD
        }
        assert dist_kinds == {kind}


def test_constraint_axis_is_honored():
    assert generate(ScenarioSpec(constraint="none"), 1).constraints == ()
    for form in ("atmost", "atleast", "implication", "cformula"):
        instance = generate(ScenarioSpec(constraint=form, depth="deep"), 1)
        assert instance.constraints


def test_sum_aggregate_emits_hard_events_and_numeric_labels():
    instance = generate(ScenarioSpec(aggregate="sum", depth="deep"), 2)
    assert any(isinstance(e, (SumAtom, AvgAtom)) for e in instance.hard_events)
    assert any(
        isinstance(node.label, int) for node in instance.pdoc.ordinary_nodes()
    )
    # The DP-side companions must stay tractable.
    assert instance.dp_events


def test_mux_probabilities_sum_to_at_most_one_in_every_mass_shape():
    for mass in AXES["mass"]:
        spec = ScenarioSpec(kinds="mux", fanout="wide", mass=mass)
        for seed in range(4):
            instance = generate(spec, seed)
            for node in instance.pdoc.nodes():
                if node.kind == MUX:
                    assert sum(node.probs) <= 1


def test_exp_distributions_sum_to_exactly_one_and_cover_children():
    spec = ScenarioSpec(kinds="exp", depth="deep", fanout="wide",
                        mass="reestimated")
    for seed in range(4):
        instance = generate(spec, seed)
        exp_nodes = [n for n in instance.pdoc.nodes() if n.kind == EXP]
        assert exp_nodes
        for node in exp_nodes:
            assert sum(weight for _, weight in node.subsets) == 1
            covered = set().union(*(subset for subset, _ in node.subsets))
            assert covered == set(range(len(node.children)))


# -- emission validation ------------------------------------------------------

def _doc_with_bad_mux() -> PDocument:
    root = PNode(ORD, "r")
    mux = PNode(MUX)
    root._attach(mux)
    for label in ("a", "b"):
        child = PNode(ORD, label)
        mux._children.append(child)
        child._parent = mux
    mux.probs = [Fraction(3, 4), Fraction(3, 4)]
    return PDocument(root, validate=False)


def test_check_emitted_names_the_mass_axis_for_mux_oversum():
    with pytest.raises(GenerationError) as excinfo:
        check_emitted(_doc_with_bad_mux(), ScenarioSpec(), seed=9)
    assert excinfo.value.axis == "mass"
    assert "mux" in str(excinfo.value)
    assert "seed: 9" in str(excinfo.value)


def test_check_emitted_names_the_mass_axis_for_zero_probability():
    root = PNode(ORD, "r")
    ind = PNode(IND)
    root._attach(ind)
    child = PNode(ORD, "a")
    ind._children.append(child)
    child._parent = ind
    ind.probs = [Fraction(0)]
    with pytest.raises(GenerationError) as excinfo:
        check_emitted(PDocument(root))
    assert excinfo.value.axis == "mass"


def test_check_emitted_names_the_kinds_axis_for_bad_exp_distribution():
    root = PNode(ORD, "r")
    exp = PNode(EXP)
    root._attach(exp)
    exp.add_exp_child(PNode(ORD, "a"))
    exp.subsets = [(frozenset({0}), Fraction(1, 2))]  # sums to 1/2, not 1
    with pytest.raises(GenerationError) as excinfo:
        check_emitted(PDocument(root))
    assert excinfo.value.axis == "kinds"


def test_check_emitted_names_the_fanout_axis_for_leaf_dist_node():
    root = PNode(ORD, "r")
    root._attach(PNode(IND))
    with pytest.raises(GenerationError) as excinfo:
        check_emitted(PDocument(root, validate=False))
    assert excinfo.value.axis == "fanout"


# -- pairwise coverage --------------------------------------------------------

TOY_AXES = {"x": ("1", "2"), "y": ("a", "b", "c")}


def test_all_pairs_count_matches_the_product_formula():
    assert len(all_pairs(TOY_AXES)) == 2 * 3
    expected = 0
    names = list(AXES)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            expected += len(AXES[a]) * len(AXES[b])
    assert len(all_pairs()) == expected


def test_ledger_tracks_partial_coverage():
    ledger = CoverageLedger(TOY_AXES)
    new = ledger.record({"x": "1", "y": "a"}, tag="first")
    assert new == {(("x", "1"), ("y", "a"))}
    assert ledger.coverage() == pytest.approx(1 / 6)
    assert len(ledger.unhit()) == 5
    # Re-recording the same features covers nothing new.
    assert ledger.record({"x": "1", "y": "a"}) == set()
    report = ledger.report()
    assert report["total_pairs"] == 6
    assert report["hit_pairs"] == 1
    assert len(report["instances"]) == 2
    assert report["instances"][0]["tag"] == "first"


def test_pairs_of_one_full_spec_covers_fifteen_pairs():
    spec = ScenarioSpec()
    assert len(pairs_of(spec.features)) == 15  # C(6, 2)


def test_standard_matrix_meets_the_coverage_floor():
    ledger = CoverageLedger()
    for spec in standard_matrix():
        ledger.record(spec.features, tag=spec.name)
    assert ledger.coverage() >= 0.95, ledger.unhit()


def test_standard_matrix_is_deterministic_and_compact():
    assert standard_matrix() == standard_matrix()
    assert 10 <= len(standard_matrix()) <= 80


def test_matrix_instances_cycles_specs_with_distinct_seeds():
    instances = list(matrix_instances(seed=100, budget=5))
    assert [inst.seed for inst in instances] == [100, 101, 102, 103, 104]
    matrix = standard_matrix()
    assert [inst.spec for inst in instances] == list(matrix[:5])
