"""Tests for possible-world enumeration and world probabilities."""

from __future__ import annotations

import random
from fractions import Fraction


from repro.pdoc.enumerate import (
    node_probability,
    world_distribution,
    world_documents,
    world_probability,
)
from repro.pdoc.pdocument import PNode, pdocument
from repro.workloads.random_gen import random_pdocument


def build_ind_mux():
    pd, root = pdocument("r")
    ind = root.ind()
    a = ind.add_edge("a", Fraction(1, 2))
    mux = root.mux()
    b = mux.add_edge("b", Fraction(3, 5))
    c = mux.add_edge("c", Fraction(2, 5))
    pd.validate()
    return pd, root, a, b, c


def test_world_distribution_sums_to_one():
    pd, *_ = build_ind_mux()
    dist = world_distribution(pd)
    assert sum(dist.values()) == 1


def test_world_distribution_values():
    pd, root, a, b, c = build_ind_mux()
    dist = world_distribution(pd)
    assert dist[frozenset({root.uid, a.uid, b.uid})] == Fraction(3, 10)
    assert dist[frozenset({root.uid, b.uid})] == Fraction(3, 10)
    assert dist[frozenset({root.uid, a.uid, c.uid})] == Fraction(1, 5)
    assert dist[frozenset({root.uid, c.uid})] == Fraction(1, 5)


def test_mux_slack_leaves_empty_choice():
    pd, root = pdocument("r")
    mux = root.mux()
    a = mux.add_edge("a", Fraction(1, 4))
    pd.validate()
    dist = world_distribution(pd)
    assert dist[frozenset({root.uid})] == Fraction(3, 4)
    assert dist[frozenset({root.uid, a.uid})] == Fraction(1, 4)


def test_stacked_distributional_nodes_merge_worlds():
    # ind above ind: deleting at either level yields the same document;
    # the distribution must aggregate them (paper, footnote 3).
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1, 2))
    leaf = inner.add_edge("x", Fraction(1, 2))
    pd.validate()
    dist = world_distribution(pd)
    assert dist[frozenset({root.uid})] == Fraction(3, 4)
    assert dist[frozenset({root.uid, leaf.uid})] == Fraction(1, 4)


def test_world_documents_materialization():
    pd, root, a, b, c = build_ind_mux()
    docs = world_documents(pd)
    assert len(docs) == 4
    assert sum(p for _, p in docs) == 1
    top_doc, top_p = docs[0]
    assert top_p == Fraction(3, 10)


def test_world_probability_matches_distribution():
    rng = random.Random(11)
    for _ in range(25):
        pd = random_pdocument(rng, allow_exp=True)
        dist = world_distribution(pd)
        for uids, p in dist.items():
            assert world_probability(pd, uids) == p


def test_world_probability_of_impossible_world():
    pd, root, a, b, c = build_ind_mux()
    # b and c are mutually exclusive
    assert world_probability(pd, frozenset({root.uid, b.uid, c.uid})) == 0
    # missing the root
    assert world_probability(pd, frozenset({a.uid})) == 0
    # unknown uid
    assert world_probability(pd, frozenset({root.uid, 10**9})) == 0


def test_node_probability_along_path():
    pd, root = pdocument("r")
    outer = root.ind()
    mid = PNode("ord", "m")
    outer.add_edge(mid, Fraction(1, 2))
    inner = mid.ind()
    leaf = inner.add_edge("x", Fraction(1, 3))
    pd.validate()
    assert node_probability(pd, leaf.uid) == Fraction(1, 6)
    assert node_probability(pd, mid.uid) == Fraction(1, 2)
    assert node_probability(pd, root.uid) == 1


def test_node_probability_matches_enumeration():
    rng = random.Random(23)
    for _ in range(20):
        pd = random_pdocument(rng, allow_exp=True)
        dist = world_distribution(pd)
        for node in pd.ordinary_nodes():
            marginal = sum(p for uids, p in dist.items() if node.uid in uids)
            assert node_probability(pd, node.uid) == marginal
