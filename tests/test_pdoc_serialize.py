"""Round-trip tests for p-document XML serialization."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.pdoc.enumerate import world_distribution
from repro.pdoc.pdocument import pdocument
from repro.pdoc.serialize import pdocument_from_xml, pdocument_to_xml
from repro.workloads.random_gen import random_pdocument
from repro.workloads.university import figure1_pdocument


def canonical_worlds(pdoc):
    """World distribution keyed by structure, not uids (serialization
    without keep_uids renumbers the nodes)."""
    from repro.xmltree.document import canonical_key

    result = {}
    for uids, p in world_distribution(pdoc).items():
        key = canonical_key(pdoc.document_from_uids(uids).root)
        result[key] = result.get(key, Fraction(0)) + p
    return result


def test_round_trip_with_uids():
    pd = figure1_pdocument()
    text = pdocument_to_xml(pd, keep_uids=True)
    parsed = pdocument_from_xml(text)
    assert world_distribution(parsed) == world_distribution(pd)


def test_round_trip_structure_without_uids():
    rng = random.Random(17)
    for _ in range(10):
        pd = random_pdocument(rng, allow_exp=True, numeric=True)
        parsed = pdocument_from_xml(pdocument_to_xml(pd))
        assert canonical_worlds(parsed) == canonical_worlds(pd)


def test_serialized_form_mentions_markup():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(7, 10))
    exp = root.exp()
    exp.add_exp_child("b")
    exp.set_exp_distribution([((0,), Fraction(1, 3)), ((), Fraction(2, 3))])
    pd.validate()
    text = pdocument_to_xml(pd)
    assert "<ind>" in text
    assert 'p="7/10"' in text
    assert "<choice" in text and 'subset="0"' in text


def test_parse_rejects_unknown_elements():
    with pytest.raises(ValueError):
        pdocument_from_xml("<zorp/>")


def test_parse_rejects_missing_probability():
    text = '<n l="r" t="s"><ind><n l="a" t="s"/></ind></n>'
    with pytest.raises(ValueError):
        pdocument_from_xml(text)
