"""Unit tests for the polynomial evaluation algorithm (Theorem 5.3).

Differential property tests against the exponential baseline live in
``test_evaluator_property.py``; these tests pin down exact probabilities
on hand-analyzable instances and the evaluator's edge cases.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.evaluator import probabilities, probability
from repro.core.formulas import (
    FALSE,
    TRUE,
    AvgAtom,
    CountAtom,
    RatioAtom,
    SFormula,
    SumAtom,
    conjunction,
    disjunction,
    exists,
    negation,
    not_exists,
)
from repro.pdoc.pdocument import PNode, pdocument
from repro.xmltree.parser import parse_boolean_pattern, parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


@pytest.fixture()
def two_ind():
    """root with two independent 'a' leaves (1/2 and 1/4)."""
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("a", Fraction(1, 4))
    pd.validate()
    return pd


def test_constants(two_ind):
    assert probability(two_ind, TRUE) == 1
    assert probability(two_ind, FALSE) == 0


def test_count_exact_values(two_ind):
    atom = CountAtom([sel("r/$a")], "=", 2)
    assert probability(two_ind, atom) == Fraction(1, 8)
    atom1 = CountAtom([sel("r/$a")], "=", 1)
    assert probability(two_ind, atom1) == Fraction(1, 2) * Fraction(3, 4) + Fraction(
        1, 2
    ) * Fraction(1, 4)
    atom0 = CountAtom([sel("r/$a")], "=", 0)
    assert probability(two_ind, atom0) == Fraction(3, 8)


def test_count_inequalities(two_ind):
    values = probabilities(
        two_ind,
        [
            CountAtom([sel("r/$a")], ">=", 1),
            CountAtom([sel("r/$a")], "<", 2),
            CountAtom([sel("r/$a")], "!=", 1),
        ],
    )
    assert values[0] == Fraction(5, 8)
    assert values[1] == Fraction(7, 8)
    assert values[2] == 1 - (Fraction(1, 2) * Fraction(3, 4) + Fraction(1, 2) * Fraction(1, 4))


def test_negative_bound(two_ind):
    assert probability(two_ind, CountAtom([sel("r/$a")], ">", -5)) == 1
    assert probability(two_ind, CountAtom([sel("r/$a")], "<", -5)) == 0


def test_boolean_pattern_probability(two_ind):
    f = exists(parse_boolean_pattern("r/a"))
    assert probability(two_ind, f) == Fraction(5, 8)
    g = not_exists(parse_boolean_pattern("r/a"))
    assert probability(two_ind, g) == Fraction(3, 8)


def test_negation_complements(two_ind):
    atom = CountAtom([sel("r/$a")], "=", 1)
    assert probability(two_ind, atom) + probability(two_ind, negation(atom)) == 1


def test_conjunction_and_disjunction(two_ind):
    a1 = CountAtom([sel("r/$a")], ">=", 1)
    a2 = CountAtom([sel("r/$a")], "<=", 1)
    assert probability(two_ind, conjunction([a1, a2])) == Fraction(1, 2)
    assert probability(two_ind, disjunction([a1, a2])) == 1


def test_joint_probabilities_are_consistent(two_ind):
    a = CountAtom([sel("r/$a")], ">=", 1)
    pa, pnota, ptrue = probabilities(two_ind, [a, negation(a), TRUE])
    assert pa + pnota == ptrue == 1


def test_mux_exclusivity():
    pd, root = pdocument("r")
    mux = root.mux()
    mux.add_edge("a", Fraction(1, 3))
    mux.add_edge("a", Fraction(1, 3))
    pd.validate()
    both = CountAtom([sel("r/$a")], "=", 2)
    assert probability(pd, both) == 0
    one = CountAtom([sel("r/$a")], "=", 1)
    assert probability(pd, one) == Fraction(2, 3)


def test_descendant_edge_through_dist_nodes():
    # r -> ind(0.5) -> m -> ind(0.5) -> x ; query r//x
    pd, root = pdocument("r")
    mid = PNode("ord", "m")
    root.ind().add_edge(mid, Fraction(1, 2))
    mid.ind().add_edge("x", Fraction(1, 2))
    pd.validate()
    f = exists(parse_boolean_pattern("r//x"))
    assert probability(pd, f) == Fraction(1, 4)


def test_nested_alpha_formula():
    # Count m-children whose subtree has at least one x.
    pd, root = pdocument("r")
    for p in (Fraction(1, 2), Fraction(1, 3)):
        mid = PNode("ord", "m")
        root.ind().add_edge(mid, Fraction(1))
        mid.ind().add_edge("x", p)
    pd.validate()
    base = sel("r/$m")
    refined = base.with_alpha(base.projected, CountAtom([sel("*//$x")], ">=", 1))
    atom = CountAtom([refined], "=", 2)
    assert probability(pd, atom) == Fraction(1, 6)
    atom1 = CountAtom([refined], "=", 1)
    assert probability(pd, atom1) == Fraction(1, 2) * Fraction(2, 3) + Fraction(
        1, 2
    ) * Fraction(1, 3)


def test_ratio_atom_probability():
    # Two independent m nodes; each m has an x child with prob 1/2.
    # RATIO(m-nodes, has-x) = 1 requires every m to have its x.
    pd, root = pdocument("r")
    for _ in range(2):
        mid = PNode("ord", "m")
        root.ind().add_edge(mid, Fraction(1))
        mid.ind().add_edge("x", Fraction(1, 2))
    pd.validate()
    has_x = CountAtom([sel("*/$x")], ">=", 1)
    all_have = RatioAtom([sel("r/$m")], has_x, "=", 1)
    assert probability(pd, all_have) == Fraction(1, 4)
    half = RatioAtom([sel("r/$m")], has_x, "=", Fraction(1, 2))
    assert probability(pd, half) == Fraction(1, 2)


def test_ratio_empty_selection_counts_as_zero():
    pd, root = pdocument("r")
    root.ind().add_edge("a", Fraction(1, 2))
    pd.validate()
    ratio = RatioAtom([sel("r/$zzz")], TRUE, "=", 0)
    assert probability(pd, ratio) == 1


def test_sum_avg_rejected_by_polynomial_evaluator(two_ind):
    with pytest.raises(TypeError, match="NP-hard"):
        probability(two_ind, SumAtom([sel("r/$a")], "=", 1))
    with pytest.raises(TypeError, match="NP-hard"):
        probability(two_ind, AvgAtom([sel("r/$a")], "=", 1))


def test_root_anchoring():
    """Patterns anchor at the document root: a pattern whose root predicate
    rejects the root label has probability 0 even if a subtree matches."""
    pd, root = pdocument("r")
    mid = PNode("ord", "q")
    root.ind().add_edge(mid, Fraction(1))
    mid.ordinary("a")
    pd.validate()
    assert probability(pd, exists(parse_boolean_pattern("q/a"))) == 0
    assert probability(pd, exists(parse_boolean_pattern("r//a"))) == 1


def test_deep_chain_does_not_blow_up():
    from repro.workloads.synthetic import chain_pdocument

    pd = chain_pdocument(60, prob=Fraction(1, 2))
    f = exists(parse_boolean_pattern("root//a"))
    assert probability(pd, f) == Fraction(1, 2)
    deep = CountAtom([sel("root//$a")], ">=", 30)
    value = probability(pd, deep)
    assert value == Fraction(1, 2) ** 30
