"""Tests for the screen-scraping workload generator."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.pdoc.enumerate import world_probability
from repro.workloads.scraping import ScrapeModel, corrupt_label, scrape, truth_world
from repro.xmltree.document import Document, doc


@pytest.fixture()
def truth():
    return Document(
        doc(
            "listing",
            doc("flat", doc("rooms", 3), doc("price", 1200)),
            doc("flat", doc("rooms", 2), doc("price", 900)),
        )
    )


def test_scrape_produces_valid_pdocument(truth):
    pdoc = scrape(truth, rng=random.Random(1))
    pdoc.validate()
    assert pdoc.root.label == "listing"


def test_true_nodes_keep_uids(truth):
    pdoc = scrape(truth, ScrapeModel(spurious=0, ambiguity=0), random.Random(2))
    scraped = {n.uid for n in pdoc.ordinary_nodes()}
    assert truth.uid_set() <= scraped


def test_truth_world_has_positive_probability(truth):
    rng = random.Random(3)
    model = ScrapeModel(spurious=0, ambiguity=0)
    pdoc = scrape(truth, model, rng)
    world = truth_world(truth, pdoc)
    assert world == truth.uid_set()
    assert world_probability(pdoc, world) > 0


def test_confidence_range_respected(truth):
    model = ScrapeModel(
        confidence_low=Fraction(1, 2),
        confidence_high=Fraction(3, 4),
        ambiguity=0,
        spurious=0,
    )
    pdoc = scrape(truth, model, random.Random(4))
    for node, index in pdoc.dist_edges():
        p = pdoc.edge_prob(node, index)
        assert Fraction(1, 2) <= p <= Fraction(3, 4)


def test_sure_depth_keeps_skeleton(truth):
    model = ScrapeModel(sure_depth=2, ambiguity=0, spurious=0)
    pdoc = scrape(truth, model, random.Random(5))
    flats = [n for n in pdoc.ordinary_nodes() if n.label == "flat"]
    for flat in flats:
        assert flat.parent.kind == "ord"  # depth-1 nodes attach surely


def test_ambiguity_generates_mux(truth):
    model = ScrapeModel(ambiguity=1.0, spurious=0)
    pdoc = scrape(truth, model, random.Random(6))
    assert any(n.kind == "mux" for n in pdoc.nodes())


def test_spurious_nodes_are_fresh(truth):
    model = ScrapeModel(spurious=1.0, ambiguity=0)
    pdoc = scrape(truth, model, random.Random(7))
    spurious = [n for n in pdoc.ordinary_nodes() if n.label == "spurious"]
    assert spurious
    assert all(n.uid not in truth.uid_set() for n in spurious)
    assert truth_world(truth, pdoc) == truth.uid_set()


def test_corrupt_label_changes_value():
    rng = random.Random(8)
    for label in ("price", "a", 42):
        corrupted = corrupt_label(label, rng)
        assert corrupted != label


def test_model_validation():
    with pytest.raises(ValueError):
        ScrapeModel(confidence_low=Fraction(3, 4), confidence_high=Fraction(1, 2))
