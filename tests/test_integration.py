"""End-to-end integration: the full PXDB workflow over one realistic
scenario, crossing every subsystem boundary (serialization → constraint
parsing → evaluation → queries → sampling → statistics → top-k →
transforms), with exact cross-checks between independent code paths."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro import (
    PXDB,
    expected_count,
    parse_constraints,
    selector,
    templates,
    top_k_worlds,
)
from repro.baseline.naive import conditional_world_distribution
from repro.core.explain import explain_violations
from repro.core.formulas import DocumentEvaluator
from repro.core.statistics import count_distribution
from repro.pdoc.serialize import pdocument_from_xml, pdocument_to_xml
from repro.pdoc.transform import normalize
from repro.workloads.scraping import ScrapeModel, scrape
from repro.xmltree.document import Document, doc
from repro.xmltree.serialize import document_from_xml, document_to_xml


@pytest.fixture(scope="module")
def pipeline():
    """Ground truth → scraper → XML round trip → PXDB with parsed constraints."""
    truth = Document(
        doc(
            "campus",
            doc("lab", doc("head", "Ada"), doc("grant", "ERC")),
            doc("lab", doc("head", "Bob")),
        )
    )
    pdoc = scrape(
        truth,
        ScrapeModel(ambiguity=0, spurious=0.5, sure_depth=1),
        random.Random(42),
    )
    # Serialize / parse round trip in the middle of the pipeline.
    pdoc = pdocument_from_xml(pdocument_to_xml(pdoc, keep_uids=True))
    constraints = parse_constraints(
        """
        head-required: forall campus/$lab : count(*/$head) >= 1
        one-glitch:    forall campus/$lab : count(*//$spurious) <= 1
        """
    )
    db = PXDB(pdoc, constraints)
    return truth, pdoc, db


def test_well_defined_and_exact(pipeline):
    truth, pdoc, db = pipeline
    p_c = db.constraint_probability()
    assert 0 < p_c < 1
    exact = conditional_world_distribution(pdoc, db.condition)
    assert sum(exact.values()) == 1


def test_query_consistency_across_paths(pipeline):
    """The evaluator's per-tuple probabilities, the enumerated conditional
    distribution and the count statistics must all agree."""
    truth, pdoc, db = pipeline
    heads = selector("campus/lab/head/$*")
    table = db.query("campus/lab/head/$*")
    exact = conditional_world_distribution(pdoc, db.condition)
    for (uid,), prob in table.items():
        reference = sum(p for uids, p in exact.items() if uid in uids)
        assert prob == reference
    # expected count = sum of per-tuple marginals
    assert expected_count(heads, pdoc, db.condition) == sum(table.values())
    # full count distribution sums to one and matches enumeration
    dist = count_distribution(heads, pdoc, db.condition)
    assert sum(dist.values()) == 1
    for k, prob in dist.items():
        reference = Fraction(0)
        for uids, p in exact.items():
            document = pdoc.document_from_uids(uids)
            selected = DocumentEvaluator().select(document.root, heads)
            if len(selected) == k:
                reference += p
        assert prob == reference


def test_samples_obey_constraints_and_support(pipeline):
    truth, pdoc, db = pipeline
    exact = conditional_world_distribution(pdoc, db.condition)
    rng = random.Random(9)
    for _ in range(25):
        document = db.sample(rng)
        assert document.uid_set() in exact
        assert explain_violations(document, db.constraints) == []


def test_top_k_heads_ranking(pipeline):
    truth, pdoc, db = pipeline
    results = top_k_worlds(pdoc, 3, db.condition)
    exact = conditional_world_distribution(pdoc, db.condition)
    ranked = sorted(exact.values(), reverse=True)
    assert [p for _, p in results] == ranked[:3]


def test_normalization_preserves_pxdb(pipeline):
    truth, pdoc, db = pipeline
    normalized = normalize(pdoc)
    db2 = PXDB(normalized, db.constraints)
    assert db2.constraint_probability() == db.constraint_probability()
    assert db2.query("campus/lab/head/$*") == db.query("campus/lab/head/$*")


def test_document_round_trip_through_files(pipeline, tmp_path):
    truth, pdoc, db = pipeline
    sample = db.sample(random.Random(1))
    path = tmp_path / "sample.xml"
    path.write_text(document_to_xml(sample, keep_uids=True))
    loaded = document_from_xml(path.read_text())
    assert loaded == sample
    assert loaded.uid_set() == sample.uid_set()


def test_templates_and_parsed_constraints_agree(pipeline):
    truth, pdoc, db = pipeline
    rebuilt = PXDB(
        pdoc,
        [
            templates.at_least("campus/$lab", "*/$head", 1),
            templates.at_most("campus/$lab", "*//$spurious", 1),
        ],
    )
    assert rebuilt.constraint_probability() == db.constraint_probability()
