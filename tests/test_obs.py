"""Tests for the observability subsystem (repro.obs): span tracing and
its propagation through the engine, the coalescer, the process pool and
the HTTP server; structured logging; benchmark telemetry."""

from __future__ import annotations

import io
import json
import os
import threading
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.constraints import constraints_formula
from repro.core.evaluator import probability
from repro.core.sampler import sample
from repro.obs import benchrec, configure_logging, get_logger, package_version
from repro.obs.spans import NOOP_SPAN, TRACER, build_tree, tree_coverage
from repro.pdoc.pdocument import PNode, pdocument
from repro.pdoc.serialize import pdocument_to_xml
from repro.service import (
    DocumentStore,
    EvaluationPool,
    Metrics,
    PXDBService,
    ServiceClient,
    start_server,
)
from repro.workloads.university import figure1_constraints, figure1_pdocument

CONSTRAINTS = "forall catalog/$shelf : count(*/$book) >= 1\n"
QUERY = "catalog/shelf/book/title/$*"


def make_catalog():
    pd, root = pdocument("catalog")
    shelf = root.ordinary("shelf")
    books = shelf.ind()
    b1 = PNode("ord", "book")
    b1.ordinary("title").ordinary("Dune")
    books.add_edge(b1, Fraction(1, 2))
    b2 = PNode("ord", "book")
    b2.ordinary("title").ordinary("Solaris")
    books.add_edge(b2, Fraction(1, 4))
    pd.validate()
    return pd


@pytest.fixture()
def catalog_files(tmp_path: Path) -> tuple[Path, Path]:
    pdoc_path = tmp_path / "catalog.pxml"
    pdoc_path.write_text(pdocument_to_xml(make_catalog()))
    constraints_path = tmp_path / "constraints.txt"
    constraints_path.write_text(CONSTRAINTS)
    return pdoc_path, constraints_path


@pytest.fixture()
def tracing():
    """Tracing on with a clean ring; restores the disabled default after."""
    TRACER.configure(enabled=True)
    TRACER.reset()
    yield TRACER
    TRACER.configure(enabled=False)
    TRACER.reset()


# -- the span model -----------------------------------------------------------

def test_span_nesting_attributes_and_status(tracing):
    with TRACER.span("outer", kind="test") as outer:
        with TRACER.span("child") as child:
            child.set(n=3)
        with pytest.raises(RuntimeError):
            with TRACER.span("failing"):
                raise RuntimeError("boom")
    spans = TRACER.spans()
    assert [s["name"] for s in spans] == ["child", "failing", "outer"]
    assert len({s["trace_id"] for s in spans}) == 1
    by_name = {s["name"]: s for s in spans}
    assert by_name["outer"]["parent_id"] is None
    assert by_name["child"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["child"]["attributes"] == {"n": 3}
    assert by_name["outer"]["attributes"] == {"kind": "test"}
    assert by_name["failing"]["status"] == "error:RuntimeError"
    tree = build_tree(spans)
    assert len(tree) == 1 and [c["name"] for c in tree[0]["children"]] == [
        "child", "failing",
    ]


def test_separate_roots_get_separate_traces(tracing):
    with TRACER.span("first"):
        pass
    with TRACER.span("second"):
        pass
    ids = {s["trace_id"] for s in TRACER.spans()}
    assert len(ids) == 2
    summaries = TRACER.traces()
    assert {row["name"] for row in summaries} == {"first", "second"}


def test_ring_buffer_bounded(tracing):
    TRACER.configure(ring_size=8)
    for index in range(30):
        with TRACER.span(f"s{index}"):
            pass
    spans = TRACER.spans()
    assert len(spans) == 8
    assert spans[-1]["name"] == "s29"
    assert TRACER.stats()["spans_recorded"] == 30


def test_disabled_path_allocates_nothing():
    assert not TRACER.enabled
    span = TRACER.span("anything", x=1)
    assert span is NOOP_SPAN
    with span as inner:
        assert inner.set(y=2) is NOOP_SPAN
    assert TRACER.spans() == []
    assert TRACER.context() is None
    assert TRACER.current_trace_id() is None


def test_jsonl_exporter(tracing, tmp_path):
    path = tmp_path / "spans.jsonl"
    TRACER.configure(jsonl_path=path)
    with TRACER.span("exported", answer=42):
        pass
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["name"] == "exported"
    assert record["attributes"] == {"answer": 42}


def test_tree_coverage():
    root = {"duration_ms": 10.0, "children": [
        {"duration_ms": 6.0}, {"duration_ms": 3.0},
    ]}
    assert tree_coverage(root) == pytest.approx(0.9)
    assert tree_coverage({"duration_ms": 0.0, "children": []}) == 1.0


# -- DP instrumentation -------------------------------------------------------

def test_dp_run_span_carries_structural_attributes(tracing):
    pdoc = figure1_pdocument()
    condition = constraints_formula(figure1_constraints())
    value = probability(pdoc, condition)
    assert 0 < value < 1
    runs = [s for s in TRACER.spans() if s["name"] == "dp.run"]
    assert runs, "no dp.run span recorded"
    attrs = runs[-1]["attributes"]
    assert attrs["nodes_computed"] > 0
    assert attrs["max_sig_width"] >= 1
    assert attrs["cache_hits"] >= 0 and attrs["cache_misses"] >= 0


def test_sample_draw_span(tracing):
    import random

    pdoc = figure1_pdocument()
    condition = constraints_formula(figure1_constraints())
    document = sample(pdoc, condition, random.Random(7))
    assert document.root.label == "university"
    draws = [s for s in TRACER.spans() if s["name"] == "sample.draw"]
    assert len(draws) == 1
    attrs = draws[0]["attributes"]
    assert attrs["edges"] > 0
    assert attrs["evaluations"] >= 1
    assert attrs["nodes_computed"] >= 0
    # The per-edge DP evaluations nest under the draw.
    passes = [s for s in TRACER.spans() if s["name"] == "engine.pass"]
    assert passes and all(
        s["trace_id"] == draws[0]["trace_id"] for s in passes
    )


# -- service: one request, one tree -------------------------------------------

def test_http_query_yields_coherent_trace_tree(tmp_path, tracing):
    # A DP-heavy workload: the trace must cover most of the request, so
    # the measured region cannot be dominated by untraced fixed overhead.
    from repro.workloads.university import scaled_university

    pdoc_path = tmp_path / "uni.pxml"
    pdoc_path.write_text(
        pdocument_to_xml(scaled_university(departments=2, members=2, students=1))
    )
    cons_path = tmp_path / "uni.cons"
    cons_path.write_text(
        "forall university/$department : "
        "count(*//$member[position/~'professor'][position/chair]) <= 1\n"
    )
    store = DocumentStore()
    store.register("uni", pdoc_path, cons_path)
    TRACER.reset()  # drop the register-time warm-up spans
    server = start_server(store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        answers = client.query("uni", "*//'ph.d. st.'/$name")
        assert answers  # exactness is test_service's job
        summaries = client.traces()
        roots = [row for row in summaries if row["name"] == "request.query"]
        assert roots, f"no request.query root in {summaries}"
        body = client.trace(roots[0]["trace_id"])
        assert body["trace_id"] == roots[0]["trace_id"]
        tree = body["tree"]
        assert len(tree) == 1, "one request must yield one root"
        root = tree[0]
        assert root["name"] == "request.query"
        assert tree_coverage(root) >= 0.8
        names = {s["name"] for s in body["spans"]}
        assert "store.get" in names
        assert "pxdb.events" in names or "query.match" in names
        # Somewhere below the root the DP ran and reported its counters.
        assert any(
            "nodes_computed" in s["attributes"] for s in body["spans"]
        ), f"no DP counters in {sorted(names)}"
        # Unknown trace ids are a clean 404.
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            client.trace("doesnotexist")
    finally:
        server.shutdown()
        server.server_close()


def test_concurrent_coalesced_requests_keep_distinct_traces(
    catalog_files, tracing
):
    store = DocumentStore(coalesce_window=0.25)
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = PXDBService(store)
    barrier = threading.Barrier(2)
    queries = [QUERY, "catalog/$shelf"]
    results: dict[int, dict] = {}

    def run(index: int) -> None:
        barrier.wait()
        results[index] = service.query("cat", queries[index])

    threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert set(results) == {0, 1}

    spans = TRACER.spans()
    roots = [s for s in spans if s["name"] == "request.query"]
    assert len(roots) == 2
    trace_ids = {s["trace_id"] for s in roots}
    assert len(trace_ids) == 2, "concurrent requests must not share a trace"

    batches = [s for s in spans if s["name"] == "coalesce.batch"]
    assert any(s["attributes"]["requests"] == 2 for s in batches), (
        "the two concurrent queries should have coalesced into one batch"
    )
    waits = [s for s in spans if s["name"] == "coalesce.wait"]
    assert waits, "the follower must record a coalesce.wait span"
    for wait in waits:
        leader = wait["attributes"]["leader_trace_id"]
        assert leader in trace_ids and leader != wait["trace_id"]


def test_pool_request_carries_parent_trace(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    with EvaluationPool(store.specs(), workers=1, timeout=60.0) as pool:
        service = PXDBService(store, pool=pool)
        payload = service.query("cat", QUERY)
        assert payload["answers"]
        spans = TRACER.spans()
        roots = [s for s in spans if s["name"] == "request.query"]
        workers = [s for s in spans if s["name"] == "pool.worker"]
        dispatches = [s for s in spans if s["name"] == "pool.dispatch"]
        assert roots and workers and dispatches
        trace_id = roots[0]["trace_id"]
        assert workers[0]["trace_id"] == trace_id
        assert dispatches[0]["trace_id"] == trace_id
        assert workers[0]["pid"] != os.getpid(), (
            "pool.worker must come from the worker process"
        )
        assert workers[0]["attributes"]["op"] == "query"
        # The dispatch child spans the IPC round-trip, so the tree covers
        # (nearly) the whole pool-backed request.
        tree = build_tree([s for s in spans if s["trace_id"] == trace_id])
        assert len(tree) == 1
        assert tree_coverage(tree[0]) >= 0.9


def test_pool_worker_stats_aggregation(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    with EvaluationPool(store.specs(), workers=2, timeout=60.0) as pool:
        service = PXDBService(store, pool=pool)
        service.sat("cat")
        report = pool.worker_stats(timeout=10.0)
        assert report["probed"] >= 1
        assert len(report["workers"]) == report["probed"]
        assert str(os.getpid()) not in report["workers"]
        for info in report["workers"].values():
            assert "store" in info and "engines" in info
        summed = report["summed"]
        assert summed["store"]["registered"] >= report["probed"]
        assert "runs" in summed["engines"]
        # The cached report is reused within max_age.
        assert pool.worker_stats(max_age=60.0) is report
        # And both surfaces expose it.
        assert "pool_workers" in service.stats()
        assert "pool_workers" in service.metrics_payload()
        prom = service.metrics_prometheus()
        assert "pxdb_pool_workers_store_registered" in prom
        assert "pxdb_pool_worker_store_registered" in prom


# -- slow-query log, exemplars, version ---------------------------------------

def test_slow_query_log(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    service = PXDBService(store, slow_ms=0.0)  # everything is "slow"
    service.sat("cat")
    assert service.metrics.counter("slow_requests") >= 1
    payload = service.metrics_payload()
    assert payload["slow_requests"]
    record = payload["slow_requests"][-1]
    assert record["op"] == "sat" and record["db"] == "cat"
    assert record["duration_ms"] >= 0.0
    assert record["trace_id"] is None  # tracing off: the log still works


def test_metrics_exemplars_reference_traces(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = PXDBService(store)
    service.sat("cat")
    payload = service.metrics_payload()
    exemplars = payload["latency"]["sat"].get("exemplars")
    assert exemplars, "traced requests must leave bucket exemplars"
    trace_id = next(iter(exemplars.values()))
    assert TRACER.trace(trace_id), "the exemplar must resolve to a trace"


def test_health_and_version(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    server = start_server(store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        info = client.health_info()
        assert info["status"] == "ok"
        assert info["version"] == package_version()
        assert info["tracing"] is False
        assert client.metrics()["version"] == package_version()
    finally:
        server.shutdown()
        server.server_close()


def test_cli_version_flag(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert package_version() in capsys.readouterr().out


def test_cli_trace_commands(catalog_files, tracing, capsys, tmp_path):
    from repro.cli import main

    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    server = start_server(store)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    try:
        ServiceClient(url).query("cat", QUERY)
        assert main(["trace", "top", "--url", url]) == 0
        top = capsys.readouterr().out
        assert "request.query" in top
        trace_id = top.split()[0]
        assert main(["trace", "show", trace_id, "--url", url]) == 0
        shown = capsys.readouterr().out
        assert "request.query" in shown and "store.get" in shown
        out = tmp_path / "traces.json"
        assert main(["trace", "export", "--url", url, "-o", str(out)]) == 0
        dumped = json.loads(out.read_text())
        assert any(
            row["trace_id"] == trace_id
            for trace in dumped
            for row in trace["spans"]
        )
        # show without an id is a usage error, unreachable server is exit 2.
        assert main(["trace", "show", "--url", url]) == 2
        assert main(["trace", "top", "--url", "http://127.0.0.1:1"]) == 2
    finally:
        server.shutdown()
        server.server_close()


# -- structured logging -------------------------------------------------------

def test_configure_logging_json_lifts_extras():
    stream = io.StringIO()
    configure_logging("debug", json_mode=True, stream=stream)
    try:
        get_logger("service.server").info(
            "slow request", extra={"op": "sat", "duration_ms": 12.5}
        )
        payload = json.loads(stream.getvalue().strip())
        assert payload["message"] == "slow request"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.service.server"
        assert payload["op"] == "sat" and payload["duration_ms"] == 12.5
    finally:
        configure_logging("warning")  # detach the StringIO handler


def test_configure_logging_plain_shows_extras():
    stream = io.StringIO()
    configure_logging("info", json_mode=False, stream=stream)
    try:
        get_logger("service.slow").warning("slow", extra={"db": "cat"})
        line = stream.getvalue().strip()
        assert "repro.service.slow" in line and "db=cat" in line
    finally:
        configure_logging("warning")


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging("loud")


def test_get_logger_prefixes():
    assert get_logger("service.server").name == "repro.service.server"
    assert get_logger("repro.obs").name == "repro.obs"


# -- benchmark telemetry ------------------------------------------------------

def test_benchrec_write_load_roundtrip(tmp_path):
    recorder = benchrec.BenchRecorder("sampling", tmp_path)
    recorder.record(
        "test_x", "w1", 0.25,
        counters={"nodes_computed": 10, "width": Fraction(3, 2)},
        speedup=4.0, note="hi",
    )
    path = recorder.write()
    assert path == tmp_path / "BENCH_sampling.json"
    payload = benchrec.load(path)
    assert payload["schema"] == benchrec.SCHEMA
    assert payload["area"] == "sampling"
    row = payload["rows"][0]
    assert row["counters"] == {"nodes_computed": 10, "width": 1.5}
    assert row["extra"] == {"note": "hi"}


def test_benchrec_rejects_bad_payloads(tmp_path):
    with pytest.raises(ValueError, match="invalid benchmark area"):
        benchrec.BenchRecorder("no/slashes")
    with pytest.raises(ValueError, match="unknown schema"):
        benchrec.validate({"schema": "nope"})
    with pytest.raises(ValueError, match="missing field"):
        benchrec.validate({"schema": benchrec.SCHEMA, "rows": []})


def test_benchrec_compare_flags_regressions():
    def payload(wall, speedup):
        return {
            "schema": benchrec.SCHEMA, "area": "x",
            "generated_at": "now", "python": "3",
            "rows": [{
                "test": "t", "workload": "w", "wall_s": wall,
                "counters": {}, "speedup": speedup, "extra": {},
            }],
        }

    # Within threshold: silent.
    assert benchrec.compare(payload(1.0, 10.0), payload(1.1, 9.5)) == []
    flagged = benchrec.compare(payload(1.0, 10.0), payload(2.0, 5.0))
    assert {f["kind"] for f in flagged} == {"wall_s", "speedup"}
    text = benchrec.format_regressions(flagged)
    assert "REGRESSION" in text and "slower" in text


def test_benchrec_cli(tmp_path, capsys):
    old = benchrec.BenchRecorder("x", tmp_path)
    old.record("t", "w", 1.0)
    old_path = tmp_path / "old.json"
    old_path.write_text(json.dumps(old.payload()))
    new = benchrec.BenchRecorder("x", tmp_path)
    new.record("t", "w", 3.0)
    new_path = tmp_path / "new.json"
    new_path.write_text(json.dumps(new.payload()))

    assert benchrec.main([str(old_path), str(old_path)]) == 0
    assert "no regressions" in capsys.readouterr().out
    assert benchrec.main([str(old_path), str(new_path)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    assert benchrec.main([str(old_path), str(new_path), "--threshold", "5"]) == 0
    assert benchrec.main([str(old_path)]) == 2
