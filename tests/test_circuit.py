"""Tests for the arithmetic-circuit compilation of the c-formula DP:
the IR builder, forward/backward passes, parameter re-binding, and the
PXDB / explain integration."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuit import Builder, Circuit, compile_formula, compile_formulas
from repro.core.constraint_parser import parse_constraints
from repro.core.evaluator import probabilities, probability
from repro.core.explain import most_influential_edges
from repro.core.formulas import exists, negation
from repro.core.pxdb import PXDB
from repro.pdoc.parameters import (
    apply_parameters,
    parameter_slots,
    parameter_values,
)
from repro.pdoc.pdocument import PNode, pdocument
from repro.pdoc.serialize import pdocument_from_xml, pdocument_to_xml
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.workloads.university import figure1_constraints, figure1_pdocument
from repro.xmltree.parser import parse_boolean_pattern

CONSTRAINT = "forall catalog/$shelf : count(*/$book) <= 1\n"


def make_catalog():
    pd, root = pdocument("catalog")
    shelf = root.ordinary("shelf")
    books = shelf.ind()
    b1 = PNode("ord", "book")
    b1.ordinary("title").ordinary("Dune")
    books.add_edge(b1, Fraction(1, 2))
    b2 = PNode("ord", "book")
    b2.ordinary("title").ordinary("Solaris")
    books.add_edge(b2, Fraction(1, 4))
    pd.validate()
    return pd


# -- the builder --------------------------------------------------------------

def test_builder_folds_constants():
    b = Builder()
    x = b.param()
    assert b.add([b.const(2), b.const(3)]) == b.const(5)
    assert b.mul([x, b.zero]) == b.zero
    assert b.mul([x, b.one]) == x
    assert b.add([x, b.zero]) == x


def test_builder_hash_conses_gates():
    b = Builder()
    x, y = b.param(), b.param()
    assert b.mul([x, y]) == b.mul([y, x])
    assert b.add([x, y]) == b.add([y, x])
    assert b.mul([x, y]) != b.add([x, y])
    # Duplicated operands are a genuine multiset: x·x is not x.
    assert b.mul([x, x]) != x


def test_builder_one_minus():
    b = Builder()
    x = b.param()
    circuit = Circuit(b.kinds, b.args, b.param_nodes, [Fraction(1, 3)],
                      [b.one_minus(x)])
    assert circuit.forward() == [Fraction(2, 3)]


def test_circuit_eliminates_dead_gates():
    b = Builder()
    x, y = b.param(), b.param()
    used = b.add([x, b.const(1)])
    b.mul([x, y])  # dead: never feeds the output
    circuit = Circuit(b.kinds, b.args, b.param_nodes, [Fraction(1, 2)] * 2,
                      [used])
    # Parameters survive DCE (positions must keep lining up) but the dead
    # product gate is gone.
    assert circuit.stats()["muls"] == 0
    assert circuit.num_params == 2
    assert circuit.forward() == [Fraction(3, 2)]
    # The dead parameter's gradient is identically zero.
    assert circuit.gradient() == [Fraction(1), Fraction(0)]


def test_circuit_rejects_wrong_value_count():
    b = Builder()
    x = b.param()
    circuit = Circuit(b.kinds, b.args, b.param_nodes, [Fraction(1, 2)], [x])
    with pytest.raises(ValueError, match="expected 1 parameter"):
        circuit.set_param_values([Fraction(1, 2), Fraction(1, 3)])


# -- parameter slots ----------------------------------------------------------

def test_parameter_slots_align_across_reparse():
    pd = figure1_pdocument()
    reparsed = pdocument_from_xml(pdocument_to_xml(pd))
    assert pd.root.structure_fingerprint() == reparsed.root.structure_fingerprint()
    assert parameter_values(pd) == parameter_values(reparsed)
    assert [s.describe() for s in parameter_slots(pd)] == [
        s.describe() for s in parameter_slots(reparsed)
    ]


def test_apply_parameters_validation():
    pd = figure1_pdocument()
    values = parameter_values(pd)
    with pytest.raises(ValueError, match="parameter vector has"):
        apply_parameters(pd, values[:-1])
    bad = list(values)
    bad[0] = Fraction(3, 2)
    with pytest.raises(ValueError, match="outside"):
        apply_parameters(pd, bad)
    assert parameter_values(pd) == values  # untouched on failure


def test_apply_parameters_counts_changed_nodes():
    pd = figure1_pdocument()
    values = parameter_values(pd)
    assert apply_parameters(pd, values) == 0  # no-op edit
    values[0] = Fraction(1, 3)
    assert apply_parameters(pd, values) == 1
    assert parameter_values(pd)[0] == Fraction(1, 3)


def test_apply_parameters_rejects_bad_mux_distribution():
    pd = figure1_pdocument()
    slots = parameter_slots(pd)
    values = parameter_values(pd)
    mux_positions = [i for i, s in enumerate(slots) if s.node.kind == "mux"]
    assert mux_positions, "figure 1 has mux nodes"
    for position in mux_positions:
        values[position] = Fraction(9, 10)
    with pytest.raises(ValueError, match="exceed 1"):
        apply_parameters(pd, values)


# -- forward pass: exact agreement with the evaluator -------------------------

def test_forward_matches_evaluator_on_figure1():
    pd = figure1_pdocument()
    condition = PXDB(pd, figure1_constraints()).condition
    event = exists(parse_boolean_pattern("university/department/member"))
    formulas = [condition, event, negation(condition)]
    assert compile_formulas(pd, formulas).probabilities() == probabilities(
        pd, formulas
    )


def test_forward_matches_evaluator_on_catalog():
    pd = make_catalog()
    condition = PXDB(pd, parse_constraints(CONSTRAINT)).condition
    circuit = compile_formula(pd, condition)
    assert circuit.probability() == probability(pd, condition)


# -- backward pass ------------------------------------------------------------

def test_gradient_matches_exact_finite_differences():
    """Central differences are exact for multilinear polynomials, so the
    backward pass must reproduce them to the last Fraction digit."""
    step = Fraction(1, 7)
    checked = 0
    for seed in range(30):
        rng = random.Random(seed)
        pd = random_pdocument(rng, max_nodes=8, max_depth=3, allow_exp=True)
        circuit = compile_formula(pd, random_formula(rng))
        if circuit.num_params == 0:
            continue
        base = list(circuit.param_values)
        gradients = circuit.gradient(0)
        for k in range(circuit.num_params):
            up, down = list(base), list(base)
            up[k] = base[k] + step
            down[k] = base[k] - step
            circuit.set_param_values(up)
            high = circuit.forward()[0]
            circuit.set_param_values(down)
            low = circuit.forward()[0]
            assert (high - low) / (2 * step) == gradients[k]
            checked += 1
        circuit.set_param_values(base)
    assert checked > 20


def test_gradient_matches_evaluator_side_differences():
    """The derivative must also match re-running the *evaluator* on a
    perturbed p-document — tying the circuit's calculus back to the DP."""
    pd = make_catalog()
    condition = parse_constraints(CONSTRAINT)
    formula = PXDB(pd, condition).condition
    circuit = compile_formula(pd, formula)
    gradients = circuit.gradient(0)
    step = Fraction(1, 16)
    base = parameter_values(pd)
    for k in range(len(base)):
        # central difference via two full evaluator runs
        up, down = list(base), list(base)
        up[k] = base[k] + step
        down[k] = base[k] - step
        apply_parameters(pd, up)
        high = probability(pd, formula)
        apply_parameters(pd, down)
        low = probability(pd, formula)
        apply_parameters(pd, base)
        assert (high - low) / (2 * step) == gradients[k]


# -- re-binding ---------------------------------------------------------------

def test_rebind_reevaluates_without_recompiling():
    pd = make_catalog()
    condition = PXDB(pd, parse_constraints(CONSTRAINT)).condition
    circuit = compile_formula(pd, condition)
    before = circuit.probability()
    edited = pdocument_from_xml(pdocument_to_xml(pd))
    values = parameter_values(edited)
    values[0] = Fraction(9, 10)
    apply_parameters(edited, values)
    circuit.rebind(edited)
    assert circuit.rebinds == 1
    assert circuit.probability() == probability(edited, condition)
    assert circuit.probability() != before


def test_rebind_zero_to_positive_probability():
    """The tracer keeps zero-weight branches the evaluator would prune, so
    re-binding 0 → positive must still agree with a fresh evaluation."""
    pd, root = pdocument("catalog")
    books = root.ordinary("shelf").ind()
    b = PNode("ord", "book")
    b.ordinary("title")
    books.add_edge(b, Fraction(0))
    pd.validate()
    event = exists(parse_boolean_pattern("catalog/shelf/book"))
    circuit = compile_formula(pd, event)
    assert circuit.probability() == Fraction(0)
    apply_parameters(pd, [Fraction(2, 3)])
    circuit.rebind(pd)
    assert circuit.probability() == Fraction(2, 3)
    assert circuit.probability() == probability(pd, event)


def test_rebind_rejects_structural_mismatch():
    circuit = compile_formula(make_catalog(), exists(
        parse_boolean_pattern("catalog/shelf/book")
    ))
    with pytest.raises(ValueError, match="structure differs"):
        circuit.rebind(figure1_pdocument())


# -- sensitivities ------------------------------------------------------------

def test_sensitivities_ranked_and_exact():
    pd = make_catalog()
    condition = PXDB(pd, parse_constraints(CONSTRAINT)).condition
    rows = compile_formula(pd, condition).sensitivities()
    assert [abs(r["derivative"]) for r in rows] == sorted(
        (abs(r["derivative"]) for r in rows), reverse=True
    )
    # Pr(C) = 1 - p1·p2 (at most one of the two books): d/dp1 = -p2.
    by_index = {r["index"]: r for r in rows}
    assert by_index[0]["derivative"] == -Fraction(1, 4)
    assert by_index[1]["derivative"] == -Fraction(1, 2)
    assert "ind@" in rows[0]["parameter"]


def test_most_influential_edges_api():
    pd = make_catalog()
    event = exists(parse_boolean_pattern("catalog/shelf/book"))
    rows = most_influential_edges(pd, event, top=1)
    assert len(rows) == 1
    all_rows = most_influential_edges(pd, event, top=None)
    assert len(all_rows) == len(parameter_slots(pd))
    constrained = most_influential_edges(
        pd, event, top=None, constraints=parse_constraints(CONSTRAINT)
    )
    assert constrained != all_rows


# -- PXDB integration ---------------------------------------------------------

def test_pxdb_event_probabilities_via_circuit():
    pd = make_catalog()
    db = PXDB(pd, parse_constraints(CONSTRAINT))
    events = [exists(parse_boolean_pattern("catalog/shelf/book"))]
    assert db.event_probabilities(events, via="circuit") == \
        db.event_probabilities(events)
    # The compiled circuit is retained and re-bound, not recompiled.
    circuit = db.circuit_for(tuple(events))
    assert db.circuit_for(tuple(events)) is circuit
    rebinds = circuit.rebinds
    db.event_probabilities(events, via="circuit")
    assert circuit.rebinds == rebinds + 1
    stats = db.circuit_stats()
    assert stats["cached"] == 1
    assert stats["rebinds"] == circuit.rebinds


def test_pxdb_circuit_tracks_parameter_edits():
    pd = make_catalog()
    db = PXDB(pd, parse_constraints(CONSTRAINT))
    events = [exists(parse_boolean_pattern("catalog/shelf/book"))]
    before = db.event_probabilities(events, via="circuit")
    values = parameter_values(pd)
    values[0] = Fraction(1, 10)
    apply_parameters(pd, values)
    after = db.event_probabilities(events, via="circuit")
    assert after != before
    fresh = PXDB(pdocument_from_xml(pdocument_to_xml(pd)),
                 parse_constraints(CONSTRAINT))
    assert after == fresh.event_probabilities(events)


def test_pxdb_sat_circuit_is_last_output():
    pd = make_catalog()
    db = PXDB(pd, parse_constraints(CONSTRAINT))
    circuit = db.compile_circuit()
    assert circuit.forward() == [db.constraint_probability()]


def test_pxdb_rejects_unknown_route():
    db = PXDB(make_catalog())
    with pytest.raises(ValueError, match="unknown evaluation route"):
        db.event_probabilities([], via="magic")


def test_pxdb_circuit_cache_is_bounded():
    pd = make_catalog()
    db = PXDB(pd)
    for index in range(db.CIRCUIT_CACHE_CAP + 3):
        event = exists(parse_boolean_pattern("catalog/shelf/book"))
        db.event_probabilities([event], via="circuit")
    assert db.circuit_stats()["cached"] <= db.CIRCUIT_CACHE_CAP
