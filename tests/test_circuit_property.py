"""Property-based differential tests for the circuit compilation: on
randomized p-documents and c-formulae, the compiled circuit's forward pass
must return ``Fraction``s *identical* to the Theorem 5.3 evaluator, and
its backward pass must match exact central finite differences (the
outputs are multilinear in the parameters, so the differences are exact).

Input distributions live in :mod:`tests.strategies`, shared with the
evaluator and numeric-backend differential suites.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given

from repro.circuit import compile_formula, compile_formulas
from repro.core.evaluator import probabilities
from repro.core.formulas import conjunction, disjunction, negation
from repro.workloads.random_gen import random_formula, random_pdocument

from .strategies import DEFAULT_SETTINGS, rngs


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_forward_matches_evaluator_count_formulae(rng):
    pdoc = random_pdocument(rng)
    formulas = [random_formula(rng, allow_ratio=False) for _ in range(2)]
    assert compile_formulas(pdoc, formulas).probabilities() == probabilities(
        pdoc, formulas
    )


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_forward_matches_evaluator_ratio_formulae(rng):
    pdoc = random_pdocument(rng)
    formula = random_formula(rng, allow_ratio=True)
    assert compile_formula(pdoc, formula).probability() == probabilities(
        pdoc, [formula]
    )[0]


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_forward_matches_evaluator_exp_nodes(rng):
    pdoc = random_pdocument(rng, allow_exp=True)
    formula = random_formula(rng)
    assert compile_formula(pdoc, formula).probability() == probabilities(
        pdoc, [formula]
    )[0]


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_forward_matches_evaluator_boolean_closure(rng):
    pdoc = random_pdocument(rng, allow_exp=True)
    f1 = random_formula(rng)
    f2 = random_formula(rng)
    formulas = [negation(f1), conjunction([f1, f2]), disjunction([f1, negation(f2)])]
    assert compile_formulas(pdoc, formulas).probabilities() == probabilities(
        pdoc, formulas
    )


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_gradient_matches_exact_central_differences(rng):
    pdoc = random_pdocument(rng, max_nodes=8, max_depth=3, allow_exp=True)
    circuit = compile_formula(pdoc, random_formula(rng))
    if circuit.num_params == 0:
        return
    step = Fraction(1, 9)
    base = list(circuit.param_values)
    gradients = circuit.gradient(0)
    # One randomly chosen parameter per example keeps the runtime sane.
    k = rng.randrange(circuit.num_params)
    up, down = list(base), list(base)
    up[k] = base[k] + step
    down[k] = base[k] - step
    circuit.set_param_values(up)
    high = circuit.forward()[0]
    circuit.set_param_values(down)
    low = circuit.forward()[0]
    assert (high - low) / (2 * step) == gradients[k]
