"""Tests for the guaranteed-accuracy approximation tier (repro.approx):
stopping rules, the event grammar, the conditioned estimator and its PXDB
wiring.  The estimator's statistical contract — the reported interval
contains the exact probability — is checked against exact DP answers and
(for aggregate events) against naive enumeration on small instances."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.aggregates.hardness import subset_sum_pdocument
from repro.approx import (
    ApproxResult,
    DEFAULT_RULE,
    EmpiricalBernstein,
    FixedHoeffding,
    RULES,
    bernstein_halfwidth,
    hoeffding_halfwidth,
    hoeffding_sample_size,
    make_rule,
    parse_event,
)
from repro.baseline.naive import naive_probability
from repro.core.constraint_parser import parse_constraints
from repro.core.formulas import CAnd, CountAtom, SFormula, SumAtom
from repro.core.pxdb import PXDB
from repro.pdoc.pdocument import PNode, pdocument
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def catalog_pxdb() -> PXDB:
    pd, root = pdocument("catalog")
    shelf = root.ordinary("shelf")
    books = shelf.ind()
    b1 = PNode("ord", "book")
    b1.ordinary("title").ordinary("Dune")
    books.add_edge(b1, Fraction(1, 2))
    b2 = PNode("ord", "book")
    b2.ordinary("title").ordinary("Solaris")
    books.add_edge(b2, Fraction(1, 4))
    pd.validate()
    constraints = parse_constraints("forall catalog/$shelf : count(*/$book) >= 1\n")
    return PXDB(pd, constraints)


# -- bounds: closed-form values ------------------------------------------------


def test_hoeffding_sample_size_values():
    assert hoeffding_sample_size(0.05, 0.05) == 738
    assert hoeffding_sample_size(0.02, 0.05) == 4612
    assert hoeffding_sample_size(0.01, 0.05) > hoeffding_sample_size(0.05, 0.05)


def test_bounds_validation():
    for bad in [(0.0, 0.05), (1.0, 0.05), (0.05, 0.0), (0.05, 1.0), (-1, 0.5)]:
        with pytest.raises(ValueError):
            hoeffding_sample_size(*bad)
        with pytest.raises(ValueError):
            make_rule(None, *bad)
    with pytest.raises(ValueError, match="unknown stopping rule"):
        make_rule("chernoff", 0.05)


def test_halfwidth_formulas():
    # Hoeffding half-width at its own sample size is <= epsilon.
    n = hoeffding_sample_size(0.05, 0.05)
    assert hoeffding_halfwidth(n, 0.05) <= 0.05
    assert hoeffding_halfwidth(n - 1, 0.05) > 0.05 - 1e-4
    # Empirical-Bernstein beats Hoeffding at low variance, loses at high.
    assert bernstein_halfwidth(0.0, 1000, 0.05) < hoeffding_halfwidth(1000, 0.05)
    assert bernstein_halfwidth(0.25, 1000, 0.05) > hoeffding_halfwidth(1000, 0.05)


def test_make_rule_registry():
    assert set(RULES) == {"hoeffding", "anytime", "bernstein"}
    assert DEFAULT_RULE == "bernstein"
    assert isinstance(make_rule(None, 0.05), EmpiricalBernstein)
    for name, cls in RULES.items():
        rule = make_rule(name, 0.1, 0.2)
        assert isinstance(rule, cls)
        assert rule.name == name
        assert (rule.epsilon, rule.delta) == (0.1, 0.2)


# -- bounds: stopping behaviour ------------------------------------------------


def test_fixed_hoeffding_stops_at_target():
    rule = FixedHoeffding(0.05, 0.05)
    assert rule.n_target == 738
    rng = random.Random(0)
    while not rule.done:
        rule.observe(1.0 if rng.random() < 0.3 else 0.0)
    estimate, lo, hi, n = rule.finalize()
    assert n == 738
    assert hi - lo <= 2 * 0.05 + 1e-12
    assert lo <= estimate <= hi


def test_fixed_hoeffding_truncation_reports_wider_interval():
    rule = FixedHoeffding(0.02, 0.05)
    rule.observe_many([1.0, 0.0] * 50)  # 100 draws, far below 4612
    assert not rule.done
    estimate, lo, hi, n = rule.finalize()
    assert n == 100
    assert not rule.done  # truncation never claims the epsilon target
    expected = hoeffding_halfwidth(100, 0.05)
    assert hi - lo == pytest.approx(2 * expected)
    assert estimate == pytest.approx(0.5)


@pytest.mark.parametrize("name", ["anytime", "bernstein"])
def test_sequential_rules_certify_epsilon(name):
    rule = make_rule(name, 0.05, 0.05)
    rng = random.Random(7)
    while not rule.done and rule.n < 50_000:
        rule.observe(1.0 if rng.random() < 0.9 else 0.0)
    assert rule.done
    estimate, lo, hi, n = rule.finalize()
    assert hi - lo <= 2 * 0.05
    assert lo <= 0.9 <= hi  # true mean inside (this seed; coverage below)


def test_bernstein_beats_hoeffding_on_low_variance():
    """The tentpole's adaptive-stopping claim: near-deterministic streams
    stop with a fraction of the fixed-n Hoeffding budget."""
    for p in (1.0, 0.99):
        rule = EmpiricalBernstein(0.02, 0.05)
        rng = random.Random(11)
        while not rule.done and rule.n < 10_000:
            rule.observe(1.0 if rng.random() < p else 0.0)
        assert rule.done
        assert rule.n < hoeffding_sample_size(0.02, 0.05) / 2, (p, rule.n)


def test_anytime_interval_is_intersection_and_monotone():
    rule = make_rule("anytime", 0.01, 0.05)
    rng = random.Random(3)
    widths = []
    for _ in range(5000):
        rule.observe(1.0 if rng.random() < 0.5 else 0.0)
        lo, hi = rule.interval
        widths.append(hi - lo)
    assert all(b <= a + 1e-12 for a, b in zip(widths, widths[1:]))


def test_observation_validation():
    rule = make_rule(None, 0.05)
    with pytest.raises(ValueError):
        rule.observe(1.5)
    with pytest.raises(ValueError):
        rule.observe(-0.1)


@pytest.mark.parametrize("name", sorted(RULES))
def test_interval_coverage(name):
    """Empirical coverage: over repeated runs the certified interval must
    contain the true mean well over 1 - delta of the time."""
    p, misses, runs = 0.3, 0, 60
    for trial in range(runs):
        rule = make_rule(name, 0.05, 0.05)
        rng = random.Random(trial)
        while not rule.done and rule.n < 5000:
            rule.observe(1.0 if rng.random() < p else 0.0)
        _, lo, hi, _ = rule.finalize()
        if not lo <= p <= hi:
            misses += 1
    assert misses <= 3  # binomial(60, 0.05) rarely exceeds 3


# -- the event grammar ---------------------------------------------------------


def test_parse_event_atoms():
    atom = parse_event("count(*//$book) >= 2")
    assert isinstance(atom, CountAtom)
    assert atom.op == ">=" and atom.bound == 2
    atom = parse_event("sum(all) > 20")
    assert isinstance(atom, SumAtom)
    assert atom.bound == Fraction(20)
    assert len(atom.disjuncts) == 2  # "all" sugar: $* or *//$*


def test_parse_event_conjunction_and_aliases():
    formula = parse_event("sum($*) > 1/2 and cnt($* or *//$*) != 3")
    assert isinstance(formula, CAnd)
    sum_atom, count_atom = formula.parts
    assert isinstance(sum_atom, SumAtom) and sum_atom.bound == Fraction(1, 2)
    assert isinstance(count_atom, CountAtom) and count_atom.op == "!="
    assert len(count_atom.disjuncts) == 2
    # Unicode ops normalize.
    assert parse_event("min($*) ≥ 2").op == ">="


def test_parse_event_errors():
    for text in [
        "",
        "bad event",
        "median($*) > 1",
        "sum($*) >",
        "sum($*)",
        "sum() > 1",
        "count($*) >= 1.5.2",
        "count($*) >= 0.5",  # count bounds must be integers
        "sum($*) > 1 and",
        "and sum($*) > 1",
    ]:
        with pytest.raises(ValueError):
            parse_event(text)


# -- estimator + PXDB wiring ---------------------------------------------------


def test_estimate_contains_exact_answer():
    db = catalog_pxdb()
    event = CountAtom([sel("*//$book")], ">=", 2)
    exact = float(db.event_probability(event))  # 1/5
    result = db.approx_probability(event, epsilon=0.05, seed=5)
    assert isinstance(result, ApproxResult)
    assert result.lo <= exact <= result.hi
    assert result.stopped == "target"
    assert result.width <= 2 * 0.05
    assert exact in result  # __contains__


def test_estimate_accepts_event_strings():
    db = catalog_pxdb()
    from_string = db.approx_probability("count(*//$book) >= 2", epsilon=0.05, seed=5)
    from_formula = db.approx_probability(
        CountAtom([sel("*//$book")], ">=", 2), epsilon=0.05, seed=5
    )
    assert from_string == from_formula


def test_seeded_estimates_are_deterministic():
    db = catalog_pxdb()
    results = [
        db.approx_probability("count(*//$book) >= 2", epsilon=0.04, seed=99)
        for _ in range(2)
    ]
    assert results[0] == results[1]
    assert results[0].seed == 99
    other = db.approx_probability("count(*//$book) >= 2", epsilon=0.04, seed=100)
    assert other.estimate != results[0].estimate or other.n != results[0].n


def test_estimate_many_shares_draws():
    db = catalog_pxdb()
    estimator = db.approx_estimator()
    before = estimator.samples_drawn
    events = ["count(*//$book) >= 1", "count(*//$book) >= 2"]
    results = estimator.estimate_many(events, epsilon=0.05, seed=2)
    drawn = estimator.samples_drawn - before
    # One shared pass: total draws are bounded by the slowest event's n,
    # not the sum of both.
    assert drawn == max(result.n for result in results)
    exact = [1.0, 0.2]
    for result, truth in zip(results, exact):
        assert result.lo <= truth <= result.hi


def test_max_samples_truncation():
    db = catalog_pxdb()
    result = db.approx_probability(
        "count(*//$book) >= 2", epsilon=0.005, max_samples=200, seed=1
    )
    assert result.n == 200
    assert result.stopped == "max_samples"
    assert result.width > 2 * 0.005  # honest: the target was not reached
    assert result.lo <= 0.2 <= result.hi
    with pytest.raises(ValueError):
        db.approx_probability("count($*) >= 1", max_samples=0)


def test_sum_event_on_subset_sum_gadget():
    """The NP-hard case that motivates the tier: SUM positivity estimated
    with certified error, checked against enumeration on a small gadget."""
    pd = subset_sum_pdocument([2, 3, 5])
    db = PXDB(pd)
    event = parse_event("sum(all) >= 5")
    exact = float(naive_probability(pd, event))
    result = db.approx_probability(event, epsilon=0.04, seed=17)
    assert result.lo <= exact <= result.hi
    assert result.stopped == "target"


def test_approx_query_matches_exact_within_interval():
    db = catalog_pxdb()
    query = "catalog/shelf/book/title/$*"
    exact = {k: float(v) for k, v in db.query(query).items()}  # uid-keyed
    table = db.approx_query(query, epsilon=0.05, seed=21)
    assert set(table) == set(exact)
    for answer, result in table.items():
        assert result.lo <= exact[answer] <= result.hi


def test_unconditioned_estimate():
    db = catalog_pxdb()
    estimator = db.approx_estimator()
    exact = float(db.constraint_probability())  # 5/8
    result = estimator.estimate(
        db.condition, epsilon=0.05, seed=13, conditioned=False
    )
    assert result.lo <= exact <= result.hi


def test_estimator_stats_and_cache():
    db = catalog_pxdb()
    assert db.approx_estimator() is db.approx_estimator()
    assert db.approx_estimator("exact") is not db.approx_estimator()
    db.approx_probability("count($*) >= 1", epsilon=0.2, seed=1)
    stats = db.approx_stats()
    assert stats["auto"]["calls"] >= 1
    assert stats["auto"]["samples_drawn"] >= 1


def test_approx_result_as_dict():
    db = catalog_pxdb()
    result = db.approx_probability("count(*//$book) >= 2", epsilon=0.05, seed=4)
    payload = result.as_dict()
    assert payload["interval"] == [result.lo, result.hi]
    assert payload["n_samples"] == result.n
    assert payload["seed"] == 4
    assert payload["rule"] == "bernstein"
    assert payload["stopped"] == "target"


def test_rule_selection_through_pxdb():
    db = catalog_pxdb()
    result = db.approx_probability(
        "count(*//$book) >= 1", epsilon=0.05, rule="hoeffding", seed=8
    )
    assert result.rule == "hoeffding"
    assert result.n == hoeffding_sample_size(0.05, 0.05)
