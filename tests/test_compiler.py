"""Unit tests for the formula compiler: spine extraction, the spine
automaton's transitions, state canonicalization, reachability/liveness
analysis and the registry's slot layout."""

from __future__ import annotations

import pytest

from repro.core.compiler import DEAD, CompiledAtom, Registry, SelectorPlan
from repro.core.formulas import (
    CountAtom,
    RatioAtom,
    SFormula,
    SumAtom,
    TRUE,
    conjunction,
    negation,
)
from repro.xmltree.parser import parse_selector
from repro.xmltree.pattern import CHILD, DESC


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def plan(text: str) -> SelectorPlan:
    return SelectorPlan(sel(text))


def test_spine_extraction():
    p = plan("a/b//$c")
    assert [n.predicate.value for n in p.spine] == ["a", "b", "c"]
    assert p.axes == [None, CHILD, DESC]
    assert p.last == 2


def test_side_branch_collection():
    p = plan("a[x/y]/$b[//z]")
    assert len(p.branches[0]) == 1  # the x branch off the root
    assert len(p.branches[1]) == 1  # the z branch off b
    names = sorted(n.predicate.value for n in p.branch_nodes)
    assert names == ["x", "y", "z"]


def test_root_projection_spine():
    p = plan("$a[b]")
    assert p.last == 0
    assert len(p.branch_nodes) == 1


def test_start_transition():
    p = plan("a/$b")
    state, accepted = p.start((True, False))
    assert not accepted
    assert state != DEAD
    state, accepted = p.start((False, True))
    assert state == DEAD and not accepted


def test_start_accepts_root_projection():
    p = plan("$a")
    state, accepted = p.start((True,))
    assert accepted


def test_step_child_axis():
    p = plan("a/$b")
    state, _ = p.start((True, False))
    nxt, accepted = p.step(state, (False, True))
    assert accepted
    # b cannot match two levels down via a child edge
    nxt2, accepted2 = p.step(nxt, (False, True))
    assert not accepted2 and nxt2 == DEAD


def test_step_descendant_axis_persists():
    p = plan("a//$b")
    state, _ = p.start((True, False))
    # b can be found at any depth below
    for _ in range(4):
        state, accepted = p.step(state, (False, False))
        assert not accepted
        assert state != DEAD  # pending keeps the walk alive
    _, accepted = p.step(state, (False, True))
    assert accepted


def test_descendant_is_strict():
    """a//$a: the root itself never counts, only proper descendants."""
    p = plan("a//$a")
    state, accepted = p.start((True, True))
    assert not accepted  # position 1 cannot land on the root
    _, accepted = p.step(state, (False, True))
    assert accepted


def test_canonicalization_drops_useless_positions():
    p = plan("a//$b")
    # position 0 has a descendant outgoing edge: folded into pending.
    state, _ = p.start((True, False))
    placed, pending = state
    assert placed == frozenset()
    assert pending == frozenset({0})


def test_atom_analysis_states_are_live():
    atom = CountAtom([sel("a/b/$c"), sel("a//$d")], ">=", 2)
    compiled = CompiledAtom(atom)
    assert compiled.live_states
    assert all(state != compiled.dead for state in compiled.live_states)
    assert compiled.cap == 3


def test_atom_cap_for_negative_bound():
    compiled = CompiledAtom(CountAtom([sel("$a")], ">", -3))
    assert compiled.cap == 1


def test_ratio_atom_uses_exact_cap():
    from repro.core.compiler import EXACT_CAP

    compiled = CompiledAtom(RatioAtom([sel("a/$b")], TRUE, ">=", 1))
    assert compiled.is_ratio
    assert compiled.cap == EXACT_CAP


def test_compare_on_saturated_counts():
    compiled = CompiledAtom(CountAtom([sel("a/$b")], "=", 2))
    assert compiled.cap == 3
    assert compiled.compare(2)
    assert not compiled.compare(3)  # saturated: true count >= 3
    assert not compiled.compare(1)


def test_compare_ratio():
    from fractions import Fraction

    compiled = CompiledAtom(RatioAtom([sel("a/$b")], TRUE, ">=", Fraction(2, 3)))
    assert compiled.compare_ratio(2, 3)
    assert not compiled.compare_ratio(1, 3)
    assert not compiled.compare_ratio(0, 0)  # empty selection -> ratio 0


def test_registry_topological_order():
    inner = CountAtom([sel("*/$x")], ">=", 1)
    base = sel("r/$m")
    outer = CountAtom([base.with_alpha(base.projected, inner)], ">=", 1)
    registry = Registry([outer])
    order = [id(f) for f in registry.order]
    assert order.index(id(inner)) < order.index(id(outer))


def test_registry_dedups_shared_formulas():
    atom = CountAtom([sel("r/$a")], ">=", 1)
    registry = Registry([conjunction([atom, atom]), atom])
    assert sum(1 for f in registry.order if f is atom) == 1
    assert len(registry.atoms) == 1


def test_registry_rejects_sum_atoms():
    with pytest.raises(TypeError, match="NP-hard"):
        Registry([SumAtom([sel("$a")], "=", 1)])


def test_registry_slot_layout_is_dense():
    atom = CountAtom([sel("a[x]/$b"), sel("a//$c[y]")], "<=", 1)
    registry = Registry([atom])
    assert registry.bit_count == 2 * 2  # two branch nodes x self/below
    compiled = registry.atoms[0]
    assert registry.count_len == len(compiled.live_states)
    offsets = sorted(registry.count_layout.values())
    assert offsets == list(range(len(offsets)))


def test_negation_registry_nests():
    atom = CountAtom([sel("r/$a")], ">=", 1)
    registry = Registry([negation(atom)])
    # the anti-congruent wraps the original atom one level deeper
    assert len(registry.atoms) == 2
    assert any(f is atom for f in registry.order)
