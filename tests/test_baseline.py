"""Unit tests for the exponential baselines (naive evaluation, rejection
sampling) — the ground-truth machinery itself needs pinning down."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.naive import (
    conditional_world_distribution,
    naive_probabilities,
    naive_probability,
)
from repro.baseline.rejection import RejectionBudgetExceeded, rejection_sample
from repro.core.formulas import (
    FALSE,
    TRUE,
    CountAtom,
    DocumentEvaluator,
    SFormula,
    SumAtom,
)
from repro.pdoc.pdocument import pdocument
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def two_leaf_pdoc():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("b", Fraction(1, 3))
    pd.validate()
    return pd


def test_constants():
    pd = two_leaf_pdoc()
    assert naive_probability(pd, TRUE) == 1
    assert naive_probability(pd, FALSE) == 0


def test_hand_computed_value():
    pd = two_leaf_pdoc()
    both = CountAtom([sel("r/$a")], "=", 1) & CountAtom([sel("r/$b")], "=", 1)
    assert naive_probability(pd, both) == Fraction(1, 6)


def test_supports_sum_atoms():
    """Unlike the polynomial evaluator, the baseline evaluates SUM/AVG."""
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge(2, Fraction(1, 2))
    ind.add_edge(3, Fraction(1, 2))
    pd.validate()
    atom = SumAtom([sel("$*"), sel("*//$*")], "=", 5)
    assert naive_probability(pd, atom) == Fraction(1, 4)


def test_batched_probabilities_share_enumeration():
    pd = two_leaf_pdoc()
    a = CountAtom([sel("r/$a")], ">=", 1)
    values = naive_probabilities(pd, [a, TRUE, FALSE])
    assert values == [Fraction(1, 2), Fraction(1), Fraction(0)]


def test_conditional_distribution_normalizes():
    pd = two_leaf_pdoc()
    condition = CountAtom([sel("r/$a")], ">=", 1)
    dist = conditional_world_distribution(pd, condition)
    assert sum(dist.values()) == 1
    for uids in dist:
        document = pd.document_from_uids(uids)
        assert DocumentEvaluator().satisfies(document.root, condition)


def test_conditional_distribution_rejects_impossible():
    pd = two_leaf_pdoc()
    with pytest.raises(ValueError):
        conditional_world_distribution(pd, FALSE)


def test_rejection_sampler_empirical():
    pd = two_leaf_pdoc()
    condition = CountAtom([sel("r/$a")], ">=", 1)
    exact = conditional_world_distribution(pd, condition)
    rng = random.Random(5)
    n = 2000
    counts: dict[frozenset[int], int] = {}
    for _ in range(n):
        document, _ = rejection_sample(pd, condition, rng)
        key = document.uid_set()
        counts[key] = counts.get(key, 0) + 1
    assert set(counts) <= set(exact)
    tv = sum(abs(counts.get(w, 0) / n - float(p)) for w, p in exact.items()) / 2
    assert tv < 0.05


def test_rejection_expected_attempts():
    """Average attempts ≈ 1 / Pr(P ⊨ C)."""
    pd = two_leaf_pdoc()
    condition = CountAtom([sel("r/$a")], ">=", 1) & CountAtom([sel("r/$b")], ">=", 1)
    p = float(naive_probability(pd, condition))  # 1/6
    rng = random.Random(6)
    total_attempts = sum(
        rejection_sample(pd, condition, rng)[1] for _ in range(600)
    )
    mean = total_attempts / 600
    assert abs(mean - 1 / p) < 1.2


def test_rejection_budget_error_message():
    pd = two_leaf_pdoc()
    with pytest.raises(RejectionBudgetExceeded, match="5 attempts"):
        rejection_sample(pd, FALSE, random.Random(0), max_attempts=5)


def test_rejection_budget_error_carries_diagnostics():
    pd = two_leaf_pdoc()
    # Without a known condition probability: attempts + rule-of-three bound.
    with pytest.raises(RejectionBudgetExceeded) as info:
        rejection_sample(pd, FALSE, random.Random(0), max_attempts=30)
    error = info.value
    assert error.attempts == 30
    assert error.estimate is None
    assert "rule of three" in str(error)
    assert f"{3 / 30:.3g}" in str(error)
    # With the exact Pr(P |= C) supplied: estimate + expected attempts.
    with pytest.raises(RejectionBudgetExceeded) as info:
        rejection_sample(
            pd, FALSE, random.Random(0), max_attempts=4,
            condition_probability=0.001,
        )
    error = info.value
    assert error.attempts == 4
    assert error.estimate == 0.001
    assert "0.001" in str(error)
    assert "expected attempts" in str(error)
    assert "1e+03" in str(error)
