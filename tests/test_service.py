"""Tests for the PXDB service layer (store, coalescer, server, pool,
shard router, batch scheduler, async front end)."""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from fractions import Fraction
from pathlib import Path
from urllib.request import urlopen

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.evaluator import IncrementalEngine
from repro.core.formulas import exists
from repro.core.pxdb import PXDB
from repro.core.query import Query
from repro.pdoc.pdocument import PNode, pdocument
from repro.pdoc.serialize import pdocument_to_xml
from repro.service import (
    BatchScheduler,
    Coalescer,
    DocumentStore,
    EvaluationPool,
    LatencyHistogram,
    Metrics,
    PXDBService,
    PoolUnavailable,
    ServiceClient,
    ServiceError,
    ShardRouter,
    ShardedEvaluationPool,
    load_pxdb,
    start_async_server,
    start_server,
)
from repro.service.metrics import COUNT_BUCKETS
from repro.service.server import (
    batch_payloads,
    query_payload,
    sat_payload,
    topk_payload,
)
from repro.service.store import read_constraints, read_pdocument

from .strategies import DEFAULT_SETTINGS
from repro.workloads.university import s_st
from repro.xmltree.document import Document, doc
from repro.xmltree.serialize import document_to_xml

CONSTRAINTS = "forall catalog/$shelf : count(*/$book) >= 1\n"
QUERY = "catalog/shelf/book/title/$*"


def make_catalog():
    """The small two-book catalog of the CLI tests (Pr(P |= C) = 5/8)."""
    pd, root = pdocument("catalog")
    shelf = root.ordinary("shelf")
    books = shelf.ind()
    b1 = PNode("ord", "book")
    b1.ordinary("title").ordinary("Dune")
    books.add_edge(b1, Fraction(1, 2))
    b2 = PNode("ord", "book")
    b2.ordinary("title").ordinary("Solaris")
    books.add_edge(b2, Fraction(1, 4))
    pd.validate()
    return pd


@pytest.fixture()
def catalog_files(tmp_path: Path) -> tuple[Path, Path]:
    pdoc_path = tmp_path / "catalog.pxml"
    pdoc_path.write_text(pdocument_to_xml(make_catalog()))
    constraints_path = tmp_path / "constraints.txt"
    constraints_path.write_text(CONSTRAINTS)
    return pdoc_path, constraints_path


def _bump_mtime(path: Path) -> None:
    stamp = os.stat(path).st_mtime_ns + 1_000_000_000
    os.utime(path, ns=(stamp, stamp))


# -- loading ------------------------------------------------------------------

def test_load_pxdb_missing_file(tmp_path):
    with pytest.raises(ValueError, match="cannot read p-document"):
        load_pxdb(tmp_path / "nope.pxml")


def test_load_pxdb_malformed_xml(tmp_path):
    bad = tmp_path / "bad.pxml"
    bad.write_text("<not xml")
    with pytest.raises(ValueError, match="malformed XML in p-document"):
        load_pxdb(bad)


def test_load_pxdb_bad_constraints(catalog_files, tmp_path):
    pdoc_path, _ = catalog_files
    bad = tmp_path / "bad.cons"
    bad.write_text("forall nonsense without count\n")
    with pytest.raises(ValueError, match="invalid constraint file"):
        load_pxdb(pdoc_path, bad)


# -- the document store -------------------------------------------------------

def test_store_warm_entry(catalog_files):
    store = DocumentStore()
    entry = store.register("cat", *catalog_files)
    # Load-time warm-up: denominator cached, engine already ran one pass.
    assert entry.pxdb.constraint_probability() == Fraction(5, 8)
    assert entry.engine.runs == 1
    assert entry.pxdb.sample_engine is entry.engine
    assert store.get("cat") is entry
    assert store.stats()["hits"] == 1


def test_store_rejects_inconsistent_pxdb(tmp_path, catalog_files):
    pdoc_path, _ = catalog_files
    impossible = tmp_path / "impossible.cons"
    impossible.write_text("forall catalog/$shelf : count(*/$book) >= 5\n")
    store = DocumentStore()
    with pytest.raises(ValueError, match="not well-defined"):
        store.register("cat", pdoc_path, impossible)


def test_store_mtime_invalidation(catalog_files):
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore()
    first = store.register("cat", pdoc_path, constraints_path)
    assert store.get("cat") is first
    constraints_path.write_text("forall catalog/$shelf : count(*/$book) >= 0\n")
    _bump_mtime(constraints_path)
    second = store.get("cat")
    assert second is not first
    assert second.pxdb.constraint_probability() == 1  # new trivial constraint
    assert store.stats()["reloads"] == 1


def test_store_mtime_checks_disabled(catalog_files):
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore(check_mtime=False)
    first = store.register("cat", pdoc_path, constraints_path)
    _bump_mtime(constraints_path)
    assert store.get("cat") is first


def test_store_lru_eviction_reloads_from_spec(catalog_files, tmp_path):
    pdoc_path, constraints_path = catalog_files
    other_path = tmp_path / "other.pxml"
    other_path.write_text(pdocument_to_xml(make_catalog()))
    store = DocumentStore(max_entries=1)
    store.register("a", pdoc_path, constraints_path)
    store.register("b", other_path)
    assert store.loaded_names() == ["b"]  # a evicted
    assert store.stats()["evictions"] == 1
    entry = store.get("a")  # transparently reloaded from the spec
    assert entry.pxdb.constraint_probability() == Fraction(5, 8)
    assert store.stats()["loads"] == 3


def test_store_in_memory_entry_cannot_reload(catalog_files):
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore(max_entries=1)
    store.add("mem", PXDB(make_catalog()))
    store.register("file", pdoc_path, constraints_path)  # evicts "mem"
    with pytest.raises(KeyError, match="evicted"):
        store.get("mem")


def test_store_unknown_name(catalog_files):
    store = DocumentStore()
    with pytest.raises(KeyError, match="no PXDB named"):
        store.get("ghost")


# -- the incremental engine's cache bound -------------------------------------

def test_engine_cache_bound_evicts():
    pdoc = make_catalog()
    db = PXDB(pdoc, [])
    engine = IncrementalEngine.for_formula(db.condition, max_entries=2)
    engine.probability(pdoc)
    assert len(engine.cache) <= 2
    assert engine.evictions > 0
    assert engine.stats()["cache_evictions"] == engine.evictions
    # Bounded cache stays correct (just slower): same probability again.
    assert engine.probability(pdoc) == 1


# -- the coalescer ------------------------------------------------------------

def test_coalescer_matches_direct_and_batches(catalog_files):
    pdoc = read_pdocument(catalog_files[0])
    constraints = read_constraints(catalog_files[1])
    db = PXDB(pdoc, constraints)
    event = exists(s_st().pattern)  # Pr = 0 on the catalog, exactness test
    book_event = exists(Query.parse(QUERY).pattern)
    direct = [db.event_probability(event), db.event_probability(book_event)]

    shared = PXDB(pdoc, constraints)
    coalescer = Coalescer(shared, window=0.02)
    results: dict[int, Fraction] = {}

    def worker(index: int) -> None:
        chosen = event if index % 2 == 0 else book_event
        results[index] = coalescer.event_probability(chosen)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for index, value in results.items():
        assert value == direct[index % 2]
    stats = coalescer.stats()
    assert stats["coalesced_requests"] == 6
    assert 1 <= stats["batches"] <= 6
    assert stats["largest_batch"] >= 1


def test_coalescer_propagates_errors():
    pdoc = make_catalog()
    db = PXDB(pdoc, [])
    db.prime_constraint_probability(Fraction(0))  # force the failure path
    coalescer = Coalescer(db, window=0.0)
    with pytest.raises(ValueError, match="not consistent"):
        coalescer.event_probability(db.condition)


# -- metrics ------------------------------------------------------------------

def test_latency_histogram_quantiles():
    histogram = LatencyHistogram()
    for seconds in (0.0004, 0.0004, 0.0004, 0.0004, 0.0004, 0.0004, 0.3):
        histogram.observe(seconds)
    summary = histogram.summary()
    assert summary["count"] == 7
    # p50: rank 3.5 of 6 observations in the (0, 0.0005] bucket.
    assert summary["p50_ms"] == round(0.0005 * 3.5 / 6 * 1000, 3)
    # p99: 0.93 into the (0.25, 0.5] bucket that holds the 0.3 s outlier
    # (the old upper-bound rule read this as a flat 500 ms).
    assert summary["p99_ms"] == 482.5
    assert summary["mean_ms"] > 0


def test_metrics_timer_counts_errors():
    metrics = Metrics()
    with metrics.timed("op"):
        pass
    with pytest.raises(RuntimeError):
        with metrics.timed("op"):
            raise RuntimeError("boom")
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["op.requests"] == 2
    assert snapshot["counters"]["op.errors"] == 1
    assert snapshot["latency"]["op"]["count"] == 2


# -- the service (in-process) -------------------------------------------------

@pytest.fixture()
def catalog_service(catalog_files) -> PXDBService:
    store = DocumentStore()
    store.register("cat", *catalog_files)
    return PXDBService(store, metrics=Metrics())


def test_service_sat_matches_direct(catalog_service):
    payload = catalog_service.sat("cat")
    assert payload["constraint_probability"] == "5/8"
    assert payload["well_defined"] is True


def test_service_query_matches_direct_and_caches(catalog_service, catalog_files):
    db = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    direct = {
        tuple(str(label) for label in labels): str(value)
        for labels, value in db.query_labels(QUERY).items()
    }
    payload = catalog_service.query("cat", QUERY)
    served = {tuple(row["answer"]): row["probability"] for row in payload["answers"]}
    assert served == direct
    # Second identical request: answered from the entry's result cache.
    again = catalog_service.query("cat", QUERY)
    assert again == payload
    assert catalog_service.metrics.counter("query.cache_hits") == 1


def test_service_sample_deterministic_and_satisfying(catalog_service, catalog_files):
    payload = catalog_service.sample("cat", count=3, seed=11)
    db = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    rng = random.Random(11)
    direct = [document_to_xml(db.sample(rng), style="tags") for _ in range(3)]
    assert payload["documents"] == direct
    for document in payload["documents"]:
        assert catalog_service.check("cat", document)["satisfies"] is True


def test_service_check_reports_violations(catalog_service):
    empty_shelf = document_to_xml(Document(doc("catalog", doc("shelf"))))
    verdict = catalog_service.check("cat", empty_shelf)
    assert verdict["satisfies"] is False
    assert any("violated" in line for line in verdict["violations"])


def test_service_sample_rejects_bad_count(catalog_service):
    with pytest.raises(ValueError, match="count must be positive"):
        catalog_service.sample("cat", count=0)


def test_service_stats_and_metrics_payloads(catalog_service):
    catalog_service.sat("cat")
    stats = catalog_service.stats()
    assert stats["registered"] == ["cat"]
    assert stats["databases"]["cat"]["constraint_probability"] == "5/8"
    metrics = catalog_service.metrics_payload()
    assert metrics["counters"]["sat.requests"] == 1
    assert metrics["engines"]["cat"]["runs"] >= 1
    assert "coalescers" in metrics and "store" in metrics


# -- HTTP round-trips ---------------------------------------------------------

@pytest.fixture()
def http_service(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    server = start_server(store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield client, server.service  # type: ignore[attr-defined]
    server.shutdown()
    server.server_close()


def test_http_roundtrip_matches_direct(http_service, catalog_files):
    client, _ = http_service
    assert client.health() is True
    assert client.sat("cat") == Fraction(5, 8)
    db = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    assert client.query("cat", QUERY) == {
        tuple(str(label) for label in labels): value
        for labels, value in db.query_labels(QUERY).items()
    }
    samples = client.sample("cat", count=2, seed=3)
    rng = random.Random(3)
    fresh = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    assert samples == [
        document_to_xml(fresh.sample(rng), style="tags") for _ in range(2)
    ]
    assert client.metrics()["counters"]["sat.requests"] == 1


def test_http_error_statuses(http_service):
    client, _ = http_service
    with pytest.raises(ServiceError) as unknown_db:
        client.sat("ghost")
    assert unknown_db.value.status == 404
    with pytest.raises(ServiceError) as bad_query:
        client.query("cat", "not a ((( query")
    assert bad_query.value.status == 400
    with pytest.raises(ServiceError) as missing_param:
        client._request("/sat", {})
    assert missing_param.value.status == 400
    with pytest.raises(ServiceError) as no_endpoint:
        client._request("/nope", {})
    assert no_endpoint.value.status == 404


def test_http_register_at_runtime(http_service, tmp_path):
    client, _ = http_service
    other = tmp_path / "other.pxml"
    other.write_text(pdocument_to_xml(make_catalog()))
    info = client.register("cat2", other)
    assert info["name"] == "cat2"
    assert client.sat("cat2") == 1  # no constraints
    with pytest.raises(ServiceError) as bad:
        client.register("cat3", str(tmp_path / "missing.pxml"))
    assert bad.value.status == 400


def test_http_concurrent_mixed_identity(http_service, catalog_files):
    """4 concurrent clients issuing mixed sat/query/sample return exactly
    what sequential direct PXDB calls produce."""
    client, service = http_service
    db = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    expected_sat = db.constraint_probability()
    expected_query = {
        tuple(str(label) for label in labels): value
        for labels, value in db.query_labels(QUERY).items()
    }

    def expected_samples(seed: int) -> list[str]:
        fresh = PXDB(
            read_pdocument(catalog_files[0]), read_constraints(catalog_files[1])
        )
        rng = random.Random(seed)
        return [document_to_xml(fresh.sample(rng), style="tags") for _ in range(2)]

    failures: list[str] = []

    def run_client(index: int) -> None:
        try:
            assert client.sat("cat") == expected_sat
            assert client.query("cat", QUERY) == expected_query
            assert client.sample("cat", count=2, seed=index) == expected_samples(index)
        except Exception as error:  # noqa: BLE001 — collected for the main thread
            failures.append(f"client {index}: {error!r}")

    threads = [threading.Thread(target=run_client, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures
    assert service.metrics.counter("sat.requests") == 4


# -- the process pool ---------------------------------------------------------

def test_pool_execution_timeout_and_fallback(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    with EvaluationPool(store.specs(), workers=1, timeout=60.0) as pool:
        # 1. Pooled execution returns the same payload as in-process.
        pooled = pool.run("sat", "cat")
        assert pooled == PXDBService(store).sat("cat")
        # 2. A too-slow worker result raises PoolUnavailable (timeout).
        with pytest.raises(PoolUnavailable, match="timed out"):
            pool.run("sleep", "cat", {"seconds": 5.0}, timeout=0.1)
        assert pool.stats()["timeouts"] == 1
        # 3. A database the workers do not know raises KeyError upward.
        with pytest.raises(KeyError):
            pool.run("sat", "ghost")

    # 4. Service-level graceful degradation: with an absurd pool timeout
    # every request falls back to the warm in-process path and still
    # returns the exact answer.
    degraded = PXDBService(
        store,
        metrics=Metrics(),
        pool=EvaluationPool(store.specs(), workers=1, timeout=1e-4),
    )
    try:
        assert degraded.sat("cat")["constraint_probability"] == "5/8"
        assert degraded.metrics.counter("pool.fallbacks") >= 1
        assert degraded.metrics_payload()["pool"]["timeouts"] >= 1
    finally:
        degraded.pool.shutdown()


def test_pool_queue_bound_rejects(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    with EvaluationPool(store.specs(), workers=1, queue_limit=1, timeout=30.0) as pool:
        blocker = threading.Thread(
            target=lambda: pool.run("sleep", "cat", {"seconds": 0.5})
        )
        blocker.start()
        try:
            with pytest.raises(PoolUnavailable, match="full|timed out"):
                # The single slot is taken by the sleeper; this either hits
                # the bound immediately or times out behind it.
                pool.run("sat", "cat", timeout=0.05)
        finally:
            blocker.join()


# -- parameter-only reloads and the circuit path ------------------------------

def _edit_first_parameter(pdoc_path: Path, value: Fraction) -> None:
    """Rewrite the p-document file with its first probability parameter
    changed to ``value`` (structure untouched)."""
    from repro.pdoc.parameters import apply_parameters, parameter_values
    from repro.pdoc.serialize import pdocument_from_xml

    pdoc = pdocument_from_xml(pdoc_path.read_text())
    values = parameter_values(pdoc)
    values[0] = value
    apply_parameters(pdoc, values)
    pdoc_path.write_text(pdocument_to_xml(pdoc))
    _bump_mtime(pdoc_path)


def test_store_parameter_only_reload_keeps_entry(catalog_files):
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore()
    first = store.register("cat", pdoc_path, constraints_path)
    engine = first.engine
    assert first.pxdb.constraint_probability() == Fraction(5, 8)
    _edit_first_parameter(pdoc_path, Fraction(9, 10))
    second = store.get("cat")
    # Same warm entry, same engine — only the parameters moved.
    assert second is first
    assert second.engine is engine
    assert second.param_reloads == 1
    assert store.stats()["param_reloads"] == 1
    assert store.stats()["reloads"] == 0
    # The denominator was refreshed from the re-bound sat circuit:
    # Pr(C) = Pr(at least one book) = 1 - (1 - 9/10)(1 - 1/4).
    assert second.pxdb.constraint_probability() == Fraction(37, 40)
    assert second.pxdb.circuit_stats()["rebinds"] >= 1


def test_store_structural_edit_still_full_reloads(catalog_files):
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore()
    first = store.register("cat", pdoc_path, constraints_path)
    pd = make_catalog()
    pd.root.children[0].ordinary("label")  # structural: one more node
    pdoc_path.write_text(pdocument_to_xml(pd))
    _bump_mtime(pdoc_path)
    second = store.get("cat")
    assert second is not first
    assert store.stats()["reloads"] == 1
    assert store.stats()["param_reloads"] == 0


def test_store_parameter_reload_to_zero_denominator_drops_entry(catalog_files):
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore()
    store.register("cat", pdoc_path, constraints_path)
    # Both books at probability 0 can never satisfy "count >= 1".
    from repro.pdoc.parameters import apply_parameters, parameter_values
    from repro.pdoc.serialize import pdocument_from_xml

    pdoc = pdocument_from_xml(pdoc_path.read_text())
    apply_parameters(pdoc, [Fraction(0)] * len(parameter_values(pdoc)))
    pdoc_path.write_text(pdocument_to_xml(pdoc))
    _bump_mtime(pdoc_path)
    with pytest.raises(ValueError, match="not consistent"):
        store.get("cat")
    assert "cat" not in store.loaded_names()  # dropped, spec retained
    with pytest.raises(ValueError, match="not well-defined"):
        store.get("cat")  # fresh load rejects it too


def test_service_query_after_parameter_reload_uses_circuit(catalog_service,
                                                           catalog_files):
    pdoc_path, _ = catalog_files
    first = catalog_service.query("cat", QUERY)
    entry = catalog_service.store.get("cat")
    assert entry.circuit_hits == 0
    _edit_first_parameter(pdoc_path, Fraction(1, 10))
    second = catalog_service.query("cat", QUERY)
    entry = catalog_service.store.get("cat")
    assert entry.circuit_hits == 1  # answered by re-bind + forward sweep
    assert second != first
    # Exact agreement with a cold evaluation of the edited file.
    db = PXDB(read_pdocument(pdoc_path), read_constraints(catalog_files[1]))
    expected = {
        tuple(str(label) for label in labels): str(value)
        for labels, value in db.query_labels(QUERY).items()
    }
    got = {
        tuple(row["answer"]): row["probability"] for row in second["answers"]
    }
    assert got == expected
    # /metrics surfaces the circuit counters.
    circuits = catalog_service.metrics_payload()["circuits"]["cat"]
    assert circuits["hits"] == 1
    assert circuits["param_reloads"] == 1
    assert circuits["rebinds"] >= 2  # sat refresh + query answer


def test_service_sat_after_parameter_reload(catalog_service, catalog_files):
    pdoc_path, _ = catalog_files
    assert catalog_service.sat("cat")["constraint_probability"] == "5/8"
    _edit_first_parameter(pdoc_path, Fraction(9, 10))
    assert catalog_service.sat("cat")["constraint_probability"] == "37/40"


def test_http_metrics_prometheus(http_service):
    import urllib.request

    client, service = http_service
    client.sat("cat")
    base = client.base_url
    with urllib.request.urlopen(f"{base}/metrics?format=prometheus") as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode("utf-8")
    assert "pxdb_sat_requests_total 1" in text
    assert "pxdb_store_loads_total" in text or "pxdb_store_loads" in text
    assert 'le="+Inf"' in text
    # Accept-header negotiation reaches the same exposition.
    request = urllib.request.Request(
        f"{base}/metrics", headers={"Accept": "text/plain"}
    )
    with urllib.request.urlopen(request) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
    # Default stays JSON.
    assert "counters" in client.metrics()


# -- regressions: same-tick store invalidation --------------------------------

def test_store_same_tick_constraint_rewrite_detected(catalog_files):
    """An edit that leaves ``(st_mtime_ns, st_size)`` unchanged must still
    invalidate: the content fingerprint catches same-tick rewrites."""
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore()
    first = store.register("cat", pdoc_path, constraints_path)
    assert first.pxdb.constraint_probability() == Fraction(5, 8)
    stat = os.stat(constraints_path)
    # Same byte length (">= 1" -> ">= 0"), mtime pinned back: stat-identical.
    constraints_path.write_text(CONSTRAINTS.replace(">= 1", ">= 0"))
    os.utime(constraints_path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
    after = os.stat(constraints_path)
    assert (after.st_mtime_ns, after.st_size) == (stat.st_mtime_ns, stat.st_size)
    second = store.get("cat")
    assert second is not first
    assert second.pxdb.constraint_probability() == 1  # trivial new constraint
    assert store.stats()["reloads"] == 1


def test_store_same_tick_double_rewrite_one_tick(catalog_files):
    """The issue's exact scenario: a file rewritten twice within one mtime
    tick.  The store observes the first rewrite, then the second lands on
    the very same ``(st_mtime_ns, st_size)`` stamp — only the fingerprint
    distinguishes them."""
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore()
    store.register("cat", pdoc_path, constraints_path)
    stat = os.stat(constraints_path)
    # First rewrite inside the tick, observed by the store.
    constraints_path.write_text(CONSTRAINTS.replace(">= 1", ">= 0"))
    os.utime(constraints_path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
    assert store.get("cat").pxdb.constraint_probability() == 1
    # Second rewrite, still on the same stamp.
    constraints_path.write_text(CONSTRAINTS.replace(">= 1", ">= 2"))
    os.utime(constraints_path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
    reloaded = store.get("cat")
    # count(book) >= 2 needs both books: Pr = 1/2 * 1/4.
    assert reloaded.pxdb.constraint_probability() == Fraction(1, 8)
    assert store.stats()["reloads"] == 2


def test_store_same_tick_parameter_edit_rebinds(catalog_files):
    """A same-tick *parameter* edit takes the warm re-bind path, not a
    full reload: fingerprints detect the change, structure fingerprints
    keep the entry."""
    pdoc_path, constraints_path = catalog_files
    store = DocumentStore()
    first = store.register("cat", pdoc_path, constraints_path)
    engine = first.engine
    stat = os.stat(pdoc_path)
    text = pdoc_path.read_text()
    assert "1/2" in text
    pdoc_path.write_text(text.replace("1/2", "1/3", 1))  # same byte length
    os.utime(pdoc_path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
    after = os.stat(pdoc_path)
    assert (after.st_mtime_ns, after.st_size) == (stat.st_mtime_ns, stat.st_size)
    second = store.get("cat")
    assert second is first
    assert second.engine is engine
    assert second.param_reloads == 1
    # Pr(C) = 1 - (1 - 1/3)(1 - 1/4) = 1/2.
    assert second.pxdb.constraint_probability() == Fraction(1, 2)


# -- regressions: pool interrupt handling -------------------------------------

def test_pool_interrupt_propagates_and_releases_slot(catalog_files):
    """KeyboardInterrupt raised while submitting must propagate (not be
    swallowed into PoolUnavailable/fallback), must not mark the pool
    broken, and must release the queue slot."""
    store = DocumentStore()
    store.register("cat", *catalog_files)
    with EvaluationPool(store.specs(), workers=1, queue_limit=1,
                        timeout=60.0) as pool:
        real_submit = pool._executor.submit

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        pool._executor.submit = interrupted
        try:
            with pytest.raises(KeyboardInterrupt):
                pool.run("sat", "cat")
        finally:
            pool._executor.submit = real_submit
        # With queue_limit=1 a leaked slot would reject this immediately,
        # and a pool marked broken would refuse it outright.
        assert pool.run("sat", "cat")["constraint_probability"] == "5/8"


def test_pool_submit_error_still_degrades(catalog_files):
    """Ordinary executor failures keep the graceful-degradation contract:
    PoolUnavailable, so the service falls back in-process."""
    store = DocumentStore()
    store.register("cat", *catalog_files)
    with EvaluationPool(store.specs(), workers=1, timeout=60.0) as pool:
        def failing(*args, **kwargs):
            raise RuntimeError("executor shut down")

        pool._executor.submit = failing
        with pytest.raises(PoolUnavailable, match="submit failed"):
            pool.run("sat", "cat")


# -- regressions: coalescer early drain ---------------------------------------

def test_coalescer_sequential_requests_drain_early(catalog_files):
    """A lone leader must not sleep the full window — three sequential
    calls against a 0.25 s window would otherwise take >= 0.75 s."""
    pdoc = read_pdocument(catalog_files[0])
    db = PXDB(pdoc, read_constraints(catalog_files[1]))
    event = exists(Query.parse(QUERY).pattern)
    direct = db.event_probability(event)
    coalescer = Coalescer(db, window=0.25)
    started = time.monotonic()
    for _ in range(3):
        assert coalescer.event_probability(event) == direct
    elapsed = time.monotonic() - started
    assert elapsed < 0.25
    assert coalescer.stats()["batches"] == 3


def test_coalescer_await_followers_drains_at_ceiling():
    coalescer = Coalescer(PXDB(make_catalog()), window=0.8, max_batch=2)
    started = time.monotonic()
    coalescer._await_followers([object(), object()])  # ceiling: no wait at all
    assert time.monotonic() - started < 0.05
    coalescer._await_followers([object()])            # lone leader: grace only
    coalescer._await_followers([])                    # emptied queue: grace only
    # Pre-fix each call slept the full window (2.4 s total); the two lone
    # calls above pay at most one window/8 grace slice each.
    assert time.monotonic() - started < 0.5


# -- the batched parameter sweep through the service stack --------------------

def test_coalescer_sweep_batches_columns(catalog_files):
    pytest.importorskip("numpy")
    from repro.pdoc.parameters import parameter_values

    pdoc = read_pdocument(catalog_files[0])
    db = PXDB(pdoc, read_constraints(catalog_files[1]))
    event = exists(Query.parse(QUERY).pattern)
    rows_a = [parameter_values(pdoc), [Fraction(1), Fraction(0)]]
    rows_b = [[Fraction(1, 3), Fraction(1, 3)]]
    coalescer = Coalescer(db, window=0.02)
    out = {}

    def worker(tag, rows):
        out[tag] = coalescer.sweep_probabilities("k", (event,), rows)

    threads = [
        threading.Thread(target=worker, args=("a", rows_a)),
        threading.Thread(target=worker, args=("b", rows_b)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for tag, rows in (("a", rows_a), ("b", rows_b)):
        conditionals, denominators = out[tag]
        expected_cond, expected_denom = db.sweep_probabilities((event,), rows)
        # Column-sliced batch results are bitwise the standalone sweep.
        assert denominators.tolist() == expected_denom.tolist()
        assert conditionals.tolist() == expected_cond.tolist()
    stats = coalescer.stats()
    assert stats["sweep_requests"] == 2
    assert stats["sweep_columns"] == 3
    assert 1 <= stats["sweep_batches"] <= 2
    assert stats["largest_sweep"] >= 1


def test_service_sweep_matches_hand_computation(catalog_service):
    pytest.importorskip("numpy")
    payload = catalog_service.sweep(
        "cat",
        [["1/2", "1/4"], ["1", "0"]],
        pattern="catalog/shelf/book/title/Dune",
    )
    assert payload["backend"] == "batch"
    assert payload["bindings"] == 2
    # Pr(C) = 1 - (1-p1)(1-p2) per binding.
    assert payload["constraint_probability"] == pytest.approx([0.625, 1.0])
    # Pr(Dune | C) = p1 / Pr(C).
    assert payload["event_probability"] == pytest.approx([0.8, 1.0])
    assert catalog_service.metrics.counter("sweep.requests") == 1
    # Equal pattern text reuses the cached compiled event.
    entry = catalog_service.store.get("cat")
    hits = entry.circuit_hits
    catalog_service.sweep("cat", [["1/2", "1/4"]],
                          pattern="catalog/shelf/book/title/Dune")
    assert entry.circuit_hits == hits + 1


def test_service_sweep_rejects_bad_bindings(catalog_service):
    pytest.importorskip("numpy")
    with pytest.raises(ValueError, match="non-empty list"):
        catalog_service.sweep("cat", [])
    with pytest.raises(ValueError, match="not a list"):
        catalog_service.sweep("cat", ["1/2"])
    with pytest.raises(ValueError, match="not numeric"):
        catalog_service.sweep("cat", [["bogus", "1/2"]])
    with pytest.raises(ValueError, match="outside"):
        catalog_service.sweep("cat", [["3/2", "1/2"]])
    with pytest.raises(ValueError, match="parameter values per binding"):
        catalog_service.sweep("cat", [["1/2"]])


def test_http_sweep_roundtrip(http_service):
    pytest.importorskip("numpy")
    client, _service = http_service
    body = client.sweep(
        "cat", [[Fraction(1, 2), Fraction(1, 4)]], pattern="catalog/shelf/book"
    )
    assert body["constraint_probability"] == pytest.approx([0.625])
    # "at least one book" is exactly the constraint: conditional is 1.
    assert body["event_probability"] == pytest.approx([1.0])
    without_pattern = client.sweep("cat", [["1", "0"], ["0", "1"]])
    assert without_pattern["constraint_probability"] == pytest.approx([1.0, 1.0])
    assert "event_probability" not in without_pattern


# -- the approximation tier (backend=approx, /approx) -------------------------

def test_service_sat_approx_backend(catalog_service):
    payload = catalog_service.sat("cat", backend="approx", approx={"seed": 3})
    assert payload["backend"] == "approx"
    lo, hi = payload["interval"]
    assert lo <= 0.625 <= hi  # exact Pr(P |= C) = 5/8
    assert payload["well_defined"] is True  # proved by the load-time DP
    assert payload["seed"] == 3
    again = catalog_service.sat("cat", backend="approx", approx={"seed": 3})
    assert again == payload


def test_service_query_approx_backend_not_cached(catalog_service):
    options = {"epsilon": 0.05, "seed": 11}
    payload = catalog_service.query("cat", QUERY, backend="approx", approx=options)
    exact = {("Dune",): 0.8, ("Solaris",): 0.4}
    assert payload["epsilon"] == 0.05
    for row in payload["answers"]:
        lo, hi = row["interval"]
        assert lo <= exact[tuple(row["answer"])] <= hi
    # Seeded repeat is identical — by re-estimation, never via the cache.
    again = catalog_service.query("cat", QUERY, backend="approx", approx=options)
    assert again == payload
    assert catalog_service.metrics.counter("query.cache_hits") == 0


def test_service_approx_route_deterministic(catalog_service):
    options = {"epsilon": 0.04, "delta": 0.05, "seed": 42}
    payload = catalog_service.approx("cat", "count(*//$book) >= 2", options)
    assert payload["backend"] == "approx"
    assert payload["seed"] == 42  # echoed back, the repeatability contract
    lo, hi = payload["interval"]
    assert lo <= 0.2 <= hi  # exact Pr = 1/5
    assert hi - lo <= 2 * 0.04
    assert payload["stopped"] == "target"
    assert payload == catalog_service.approx("cat", "count(*//$book) >= 2", options)


def test_service_approx_metrics(catalog_service):
    catalog_service.approx("cat", "count(*//$book) >= 1", {"seed": 1})
    catalog_service.sat("cat", backend="approx", approx={"seed": 2})
    metrics = catalog_service.metrics_payload()
    assert metrics["counters"]["approx.requests"] == 1
    assert metrics["counters"]["approx.samples"] > 0
    widths = metrics["values"]["approx.bound_width"]
    assert widths["count"] == 2
    assert 0.0 < widths["mean"] <= 0.2
    assert metrics["approx"]["cat"]["auto"]["samples_drawn"] > 0
    rendered = catalog_service.metrics_prometheus()
    assert "pxdb_approx_bound_width_bucket" in rendered
    assert "pxdb_approx_samples_total" in rendered


def test_service_approx_rejects_bad_input(catalog_service):
    with pytest.raises(ValueError, match="aggregate atom"):
        catalog_service.approx("cat", "nonsense")
    with pytest.raises(ValueError, match="unknown backend"):
        catalog_service.sample("cat", backend="approx")
    with pytest.raises(ValueError, match="unknown stopping rule"):
        catalog_service.approx("cat", "count($*) >= 1", {"rule": "magic"})


def test_http_approx_roundtrip(http_service):
    client, service = http_service
    body = client.approx(
        "cat", "count(*//$book) >= 2", epsilon=0.05, seed=7, rule="bernstein"
    )
    assert body["seed"] == 7
    assert body["rule"] == "bernstein"
    lo, hi = body["interval"]
    assert lo <= 0.2 <= hi
    # Same seed over HTTP reproduces the estimate exactly.
    again = client.approx(
        "cat", "count(*//$book) >= 2", epsilon=0.05, seed=7, rule="bernstein"
    )
    assert again["estimate"] == body["estimate"]
    assert again["n_samples"] == body["n_samples"]
    # backend=approx on the GET-style /sat and /query params.
    sat_body = client._request("/sat", {"db": "cat", "backend": "approx",
                                        "seed": 5, "epsilon": 0.05})
    assert sat_body["interval"][0] <= 0.625 <= sat_body["interval"][1]
    query_body = client._request(
        "/query",
        {"db": "cat", "query": QUERY, "backend": "approx", "seed": 5},
    )
    assert all("interval" in row for row in query_body["answers"])


def test_http_approx_error_status(http_service):
    client, _ = http_service
    with pytest.raises(ServiceError) as info:
        client.approx("cat", "garbage")
    assert info.value.status == 400


# -- /topk: top-k answers of a query ------------------------------------------

def test_service_topk_is_query_truncation(catalog_service):
    full = catalog_service.query("cat", QUERY)
    top = catalog_service.topk("cat", QUERY, k=1)
    assert top["answers"] == full["answers"][:1]
    assert top["candidates"] == len(full["answers"])
    assert top["k"] == 1
    with pytest.raises(ValueError, match="k must be positive"):
        catalog_service.topk("cat", QUERY, k=0)
    # Per-(query, k) result cache, separate from /query's.
    again = catalog_service.topk("cat", QUERY, k=1)
    assert again == top
    assert catalog_service.metrics.counter("query.cache_hits") == 1


# -- the consistent-hash shard router -----------------------------------------

def test_shard_router_partitions_and_is_deterministic():
    names = [f"db-{index}" for index in range(200)]
    router = ShardRouter(4)
    assignment = router.assign(names)
    # A partition: every name in exactly one shard, shards 0..3 all used.
    assert sorted(name for shard in assignment.values() for name in shard) == sorted(names)
    assert set(assignment) == {0, 1, 2, 3}
    assert all(assignment[shard] for shard in assignment)
    # blake2b positions, not hash(): a fresh router (≈ another process)
    # agrees on every assignment.
    again = ShardRouter(4)
    assert [router.shard_for(n) for n in names] == [again.shard_for(n) for n in names]
    with pytest.raises(ValueError, match="shards must be at least 1"):
        ShardRouter(0)
    with pytest.raises(ValueError, match="replicas must be at least 1"):
        ShardRouter(2, replicas=0)


def test_shard_router_growth_moves_a_fraction():
    """Consistent hashing: going 4 → 5 shards re-homes ~1/5 of the names,
    not all of them (the bound is generous to stay timing/distribution
    independent)."""
    names = [f"db-{index}" for index in range(400)]
    before = ShardRouter(4)
    after = ShardRouter(5)
    moved = sum(before.shard_for(n) != after.shard_for(n) for n in names)
    assert 0 < moved < len(names) / 2


# -- the heterogeneous batch scheduler ----------------------------------------

def _echo_runner(calls: list):
    def runner(db: str, requests: list[dict]) -> list[dict]:
        calls.append((db, list(requests)))
        return [dict(request) for request in requests]

    return runner


def test_scheduler_packs_pending_requests_into_batches():
    calls: list = []
    with BatchScheduler(_echo_runner(calls), window=0.2) as scheduler:
        futures = [scheduler.submit("db", {"n": index}) for index in range(10)]
        results = [future.result(timeout=10) for future in futures]
    assert [result["n"] for result in results] == list(range(10))
    # All ten arrived within one window: far fewer runner calls than
    # requests (usually exactly one).
    assert len(calls) <= 3
    assert sum(len(batch) for _, batch in calls) == 10
    stats = scheduler.stats()
    assert stats["batched_requests"] == 10
    assert stats["largest_batch"] >= 4


def test_scheduler_lone_request_pays_grace_not_window():
    calls: list = []
    with BatchScheduler(_echo_runner(calls), window=2.0) as scheduler:
        start = time.perf_counter()
        scheduler.submit("db", {"n": 0}).result(timeout=10)
        elapsed = time.perf_counter() - start
    # Grace slice is window/8 = 0.25 s; the full 2 s window would fail this.
    assert elapsed < 1.5


def test_scheduler_max_batch_drains_immediately():
    calls: list = []
    with BatchScheduler(_echo_runner(calls), window=30.0, max_batch=3) as scheduler:
        futures = [scheduler.submit("db", {"n": index}) for index in range(3)]
        for future in futures:
            future.result(timeout=5)  # would time out if the window ruled
    assert calls and len(calls[0][1]) == 3


def test_scheduler_groups_by_db():
    calls: list = []
    with BatchScheduler(_echo_runner(calls), window=0.2) as scheduler:
        a = [scheduler.submit("a", {"n": index}) for index in range(3)]
        b = [scheduler.submit("b", {"n": index}) for index in range(3)]
        for future in a + b:
            future.result(timeout=10)
    # Two dbs never share a batch — each joint pass is per-entry.
    assert {db for db, _ in calls} == {"a", "b"}
    assert sum(len(batch) for db, batch in calls if db == "a") == 3
    assert sum(len(batch) for db, batch in calls if db == "b") == 3


def test_scheduler_per_request_error_isolation(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    scheduler = BatchScheduler(
        lambda db, requests: batch_payloads(store.get(db), requests),
        window=0.05,
    )
    try:
        good = scheduler.submit("cat", {"op": "query", "query_text": QUERY})
        bad = scheduler.submit("cat", {"op": "query", "query_text": "not a ((( query"})
        bad_k = scheduler.submit("cat", {"op": "topk", "query_text": QUERY, "k": 0})
        assert good.result(timeout=10)["answers"]
        with pytest.raises(ValueError):
            bad.result(timeout=10)
        with pytest.raises(ValueError, match="k must be positive"):
            bad_k.result(timeout=10)
    finally:
        scheduler.close()


def test_scheduler_runner_failure_fans_out():
    def boom(db: str, requests: list[dict]) -> list[dict]:
        raise RuntimeError("shard down")

    scheduler = BatchScheduler(boom, window=0.01)
    try:
        futures = [scheduler.submit("db", {}) for _ in range(3)]
        for future in futures:
            with pytest.raises(RuntimeError, match="shard down"):
                future.result(timeout=10)
        assert scheduler.stats()["errors"] >= 1
    finally:
        scheduler.close()


def test_scheduler_drain_flushes_waiting_windows():
    calls: list = []
    scheduler = BatchScheduler(_echo_runner(calls), window=30.0)
    try:
        future = scheduler.submit("db", {"n": 1})
        start = time.perf_counter()
        assert scheduler.drain(10.0) is True
        assert future.done()
        # Drain zeroed the deadline instead of sitting out the grace slice
        # (30/8 = 3.75 s).
        assert time.perf_counter() - start < 3.0
    finally:
        scheduler.close()


_BATCH_QUERIES = (
    QUERY,
    "catalog/shelf/$book",
    "catalog/$shelf",
    "catalog/shelf/book/$title",
)

_batch_requests = st.lists(
    st.one_of(
        st.just({"op": "sat"}),
        st.sampled_from(_BATCH_QUERIES).map(
            lambda q: {"op": "query", "query_text": q}
        ),
        st.tuples(
            st.sampled_from(_BATCH_QUERIES), st.integers(min_value=1, max_value=3)
        ).map(lambda pair: {"op": "topk", "query_text": pair[0], "k": pair[1]}),
    ),
    min_size=1,
    max_size=8,
)


@settings(
    DEFAULT_SETTINGS,
    max_examples=25,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(requests=_batch_requests)
def test_scheduler_mixed_interleaving_identity(catalog_files, requests):
    """Any interleaving of mixed sat/query/top-k requests through the
    batch scheduler returns payloads byte-identical to sequential direct
    evaluation — exact Fractions, shared traversal, same answer."""
    store = DocumentStore()
    store.register("cat", *catalog_files)
    scheduler = BatchScheduler(
        lambda db, batch: batch_payloads(store.get(db), batch),
        window=0.02,
    )
    try:
        futures = [
            scheduler.submit("cat", dict(request)) for request in requests
        ]
        batched = [future.result(timeout=30) for future in futures]
    finally:
        scheduler.close()
    # The reference: a fresh entry (cold caches), every request evaluated
    # alone, in order.
    entry = DocumentStore().register("cat", *catalog_files)
    for request, payload in zip(requests, batched):
        if request["op"] == "sat":
            expected = sat_payload(entry)
        elif request["op"] == "query":
            expected = query_payload(entry, request["query_text"], coalesce=False)
        else:
            expected = topk_payload(
                entry, request["query_text"], request["k"], coalesce=False
            )
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )


# -- the sharded pool ---------------------------------------------------------

def test_sharded_pool_confinement_and_batch_identity(catalog_files, tmp_path):
    pdoc_path, constraints_path = catalog_files
    other = tmp_path / "other.pxml"
    other.write_text(pdocument_to_xml(make_catalog()))
    store = DocumentStore()
    store.register("cat", pdoc_path, constraints_path)
    store.register("cat2", other)
    pool = ShardedEvaluationPool(store.specs(), shards=2, workers_per_shard=1)
    try:
        assignment = pool.shard_assignment()
        assert sorted(
            name for names in assignment.values() for name in names
        ) == ["cat", "cat2"]
        # Plain ops route to the owning shard.
        assert pool.run("sat", "cat", {})["constraint_probability"] == "5/8"
        assert pool.run("sat", "cat2", {})["constraint_probability"] == "1"
        # A heterogeneous batch in the worker equals sequential in-process.
        requests = [
            {"op": "sat"},
            {"op": "query", "query_text": QUERY},
            {"op": "topk", "query_text": QUERY, "k": 1},
        ]
        pooled = pool.run_batch("cat", requests)
        entry = DocumentStore().register("cat", pdoc_path, constraints_path)
        direct = [
            sat_payload(entry),
            query_payload(entry, QUERY, coalesce=False),
            topk_payload(entry, QUERY, 1, coalesce=False),
        ]
        assert json.dumps(pooled, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
        stats = pool.stats()
        assert stats["shards"] == 2
        assert [row["shard"] for row in stats["per_shard"]] == [0, 1]
        assert sum(row["entries"] for row in stats["per_shard"]) == 2
        # Memory confinement: each worker's store holds ONLY its shard's
        # names.
        report = pool.worker_stats(timeout=10.0)
        assert report["probed"] >= 1
        for info in report["workers"].values():
            assert info["names"] == sorted(assignment[info["shard"]])
            assert len(info["names"]) == 1
    finally:
        pool.shutdown()


def test_pool_quiesce_waits_for_inflight_work(catalog_files):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    pool = EvaluationPool(store.specs(), workers=1, timeout=0.05)
    try:
        with pytest.raises(PoolUnavailable):  # result timeout, worker busy
            pool.run("sleep", "cat", {"seconds": 0.5})
        start = time.perf_counter()
        assert pool.quiesce(20.0) is True
        # quiesce really waited the abandoned request out rather than
        # returning while the worker was still evaluating.
        assert time.perf_counter() - start > 0.1
        assert pool.quiesce(1.0) is True  # idempotent when already quiet
    finally:
        pool.shutdown()


# -- the async front end ------------------------------------------------------

@pytest.fixture()
def async_http_service(catalog_files):
    """An asyncio server over an in-process scheduler (no worker
    processes — the sharded-pool path has its own test above)."""
    store = DocumentStore()
    store.register("cat", *catalog_files)
    metrics = Metrics()
    scheduler = BatchScheduler(
        lambda db, requests: batch_payloads(store.get(db), requests),
        window=0.01,
        metrics=metrics,
    )
    service = PXDBService(store, metrics=metrics, scheduler=scheduler)
    handle = start_async_server(service)
    client = ServiceClient(f"http://{handle.address[0]}:{handle.address[1]}")
    yield client, service
    handle.stop()
    scheduler.close()


def test_async_http_roundtrip_matches_direct(async_http_service, catalog_files):
    client, service = async_http_service
    assert client.health() is True
    assert client.sat("cat") == Fraction(5, 8)
    db = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    expected = {
        tuple(str(label) for label in labels): value
        for labels, value in db.query_labels(QUERY).items()
    }
    assert client.query("cat", QUERY) == expected
    top = client.topk("cat", QUERY, k=1)
    assert top == {("Dune",): Fraction(4, 5)}
    # Non-batchable routes run through the shared executor path.
    samples = client.sample("cat", count=2, seed=3)
    rng = random.Random(3)
    fresh = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    assert samples == [
        document_to_xml(fresh.sample(rng), style="tags") for _ in range(2)
    ]
    assert service.metrics.counter("sat.requests") == 1
    assert service.scheduler.stats()["batches"] >= 1


def test_async_http_error_statuses(async_http_service):
    client, _ = async_http_service
    with pytest.raises(ServiceError) as unknown_db:
        client.sat("ghost")  # batched path: KeyError from the runner
    assert unknown_db.value.status == 404
    with pytest.raises(ServiceError) as bad_query:
        client.query("cat", "not a ((( query")  # per-request error marker
    assert bad_query.value.status == 400
    with pytest.raises(ServiceError) as missing_param:
        client._request("/query", {"db": "cat"})
    assert missing_param.value.status == 400
    with pytest.raises(ServiceError) as bad_k:
        client.topk("cat", QUERY, k=0)
    assert bad_k.value.status == 400
    with pytest.raises(ServiceError) as no_endpoint:
        client._request("/nope", {})
    assert no_endpoint.value.status == 404
    with pytest.raises(ServiceError) as bad_count:
        client.sample("cat", count=0)  # executor path keeps its contract
    assert bad_count.value.status == 400


def test_async_http_concurrent_mixed_identity(async_http_service, catalog_files):
    """A concurrent mixed burst over the async front end returns exactly
    the sequential direct answers, while the scheduler actually batches."""
    client, service = async_http_service
    db = PXDB(read_pdocument(catalog_files[0]), read_constraints(catalog_files[1]))
    expected_sat = db.constraint_probability()
    expected_query = {
        tuple(str(label) for label in labels): value
        for labels, value in db.query_labels(QUERY).items()
    }
    expected_top = dict(
        sorted(expected_query.items(), key=lambda item: -item[1])[:1]
    )
    failures: list[str] = []

    def run_client(index: int) -> None:
        try:
            assert client.sat("cat") == expected_sat
            assert client.query("cat", QUERY) == expected_query
            assert client.topk("cat", QUERY, k=1) == expected_top
        except Exception as error:  # noqa: BLE001 — collected for the main thread
            failures.append(f"client {index}: {error!r}")

    threads = [threading.Thread(target=run_client, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures
    stats = service.scheduler.stats()
    # Every sat is batched; query/topk repeats may resolve from the shared
    # result cache instead of re-entering the scheduler.
    assert 6 <= stats["batched_requests"] <= 18
    assert stats["batches"] >= 1


def test_async_http_repeat_hits_shared_result_cache(async_http_service):
    client, service = async_http_service
    first = client.query("cat", QUERY)
    batched = service.scheduler.stats()["batched_requests"]
    # The repeat resolves from the entry's result cache (the same cache the
    # threaded front end fills) without re-entering the scheduler.
    assert client.query("cat", QUERY) == first
    assert service.metrics.counter("query.cache_hits") == 1
    assert service.scheduler.stats()["batched_requests"] == batched


def test_async_http_prometheus_routes_and_scheduler(async_http_service):
    client, _ = async_http_service
    client.sat("cat")
    client.topk("cat", QUERY, k=1)
    with urlopen(client.base_url + "/metrics?format=prometheus", timeout=10) as response:
        assert "text/plain" in response.headers["Content-Type"]
        text = response.read().decode("utf-8")
    assert 'op="sat",route="/sat"' in text
    assert 'op="topk",route="/topk"' in text
    assert "pxdb_scheduler_batch_size_bucket" in text
    assert "pxdb_scheduler_batches" in text


@pytest.mark.parametrize("frontend", ["threaded", "async"])
def test_serve_cli_sigterm_clean_shutdown(frontend, catalog_files):
    """`repro serve` (both front ends) drains and exits 0 on SIGTERM —
    the container-deploy stop signal, not just Ctrl-C."""
    pdoc_path, constraints_path = catalog_files
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--frontend", frontend, "--shards", "2",
            "--db", f"cat={pdoc_path}:{constraints_path}",
            "--port", "0",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = process.stderr.readline()
            if "serving PXDBs on http://" in line:
                port = int(line.rsplit(":", 1)[1])
                break
        assert port, "server never announced its port"
        with urlopen(f"http://127.0.0.1:{port}/sat?db=cat", timeout=30) as response:
            body = json.loads(response.read())
        assert body["constraint_probability"] == "5/8"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


# -- client retry/backoff -----------------------------------------------------

def _flaky_http_server(failures: int, body: bytes = b'{"ok": true, "status": "ok"}'):
    """A raw socket server: drops the first ``failures`` connections
    without a response, then answers every request with ``body``.
    Returns (base_url, accept_counter, close)."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    host, port = listener.getsockname()
    accepts: list[int] = []
    stop = threading.Event()

    def serve() -> None:
        while not stop.is_set():
            try:
                connection, _ = listener.accept()
            except OSError:
                return
            accepts.append(1)
            if len(accepts) <= failures:
                connection.close()
                continue
            try:
                connection.recv(65536)
                connection.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"Connection: close\r\n\r\n" + body
                )
            finally:
                connection.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()

    def close() -> None:
        stop.set()
        listener.close()

    return f"http://{host}:{port}", accepts, close


def test_client_retries_idempotent_calls():
    base_url, accepts, close = _flaky_http_server(failures=2)
    try:
        client = ServiceClient(base_url, retries=3, backoff=0.01)
        assert client.health() is True  # two resets absorbed, third attempt wins
        assert len(accepts) == 3
    finally:
        close()


def test_client_retries_off_by_default():
    base_url, accepts, close = _flaky_http_server(failures=1)
    try:
        client = ServiceClient(base_url)
        with pytest.raises(ServiceError, match="cannot reach service"):
            client.health()
        assert len(accepts) == 1  # no second attempt
    finally:
        close()


def test_client_never_retries_non_idempotent_calls():
    base_url, accepts, close = _flaky_http_server(failures=100)
    try:
        client = ServiceClient(base_url, retries=3, backoff=0.01)
        with pytest.raises(ServiceError):
            client.sample("cat", count=1, seed=0)
        assert len(accepts) == 1  # sample draws server RNG: one attempt only
        with pytest.raises(ServiceError):
            client.approx("cat", "count(*/$x) >= 1")
        assert len(accepts) == 2
    finally:
        close()


def test_client_never_retries_http_errors(http_service):
    client, service = http_service
    before = service.metrics.counter("sat.requests")
    retrying = ServiceClient(client.base_url, retries=3, backoff=0.01)
    with pytest.raises(ServiceError) as info:
        retrying.sat("ghost")
    assert info.value.status == 404
    # The server answered: exactly one attempt despite retries=3.
    assert service.metrics.counter("sat.requests") == before + 1
    with pytest.raises(ValueError):
        ServiceClient(client.base_url, retries=-1)


# -- metrics: the route label -------------------------------------------------

def test_metrics_route_label_separates_endpoints():
    metrics = Metrics()
    with metrics.timed("sat", route="/sat"):
        pass
    with metrics.timed("sweep", route="/sweep"):
        pass
    metrics.observe_value("scheduler.batch_size", 3, buckets=COUNT_BUCKETS)
    text = metrics.render_prometheus()
    assert 'op="sat",route="/sat"' in text
    assert 'op="sweep",route="/sweep"' in text
    assert "pxdb_scheduler_batch_size_bucket" in text
    # The JSON snapshot keeps its pre-label shape (route is Prometheus-only).
    snapshot = metrics.snapshot()
    assert set(snapshot["latency"]) == {"sat", "sweep"}
    assert "route" not in json.dumps(snapshot["latency"])
    assert snapshot["values"]["scheduler.batch_size"]["count"] == 1
