"""Round-trip tests for the pattern/constraint renderer."""

from __future__ import annotations

import random

import pytest

from repro.core.constraint_parser import parse_constraint
from repro.core.formulas import SFormula, select
from repro.pdoc.generate import random_instance
from repro.workloads.random_gen import random_pdocument, random_selector
from repro.workloads.university import c2, figure2_document
from repro.xmltree.parser import parse_pattern, parse_selector
from repro.xmltree.render import (
    RenderError,
    constraint_to_string,
    pattern_to_string,
    render_predicate,
    selector_to_string,
)
from repro.xmltree.predicates import ANY, LabelEquals, LabelSuffix, NodeIs


def round_trip_selector(text: str) -> str:
    pattern, node = parse_selector(text)
    return selector_to_string(SFormula(pattern, node))


@pytest.mark.parametrize(
    "text",
    [
        "university/$department",
        "*//$member[position/~'professor'][position/chair]",
        "*//'ph.d. st.'/$name",
        "$*[position/'full professor']",
        "a//b/$c[d][//e]",
        "values/$42",
    ],
)
def test_selector_round_trip_reparses_identically(text):
    rendered = round_trip_selector(text)
    pattern1, node1 = parse_selector(text)
    pattern2, node2 = parse_selector(rendered)
    # Equivalence check: same selected sets on random documents.
    rng = random.Random(hash(text) % 10**6)
    for _ in range(10):
        pdoc = random_pdocument(rng, labels=("a", "b", "c", "d", "e"))
        document = random_instance(pdoc, rng)
        left = {v.uid for v in select(document.root, SFormula(pattern1, node1))}
        right = {v.uid for v in select(document.root, SFormula(pattern2, node2))}
        assert left == right


def test_render_random_selectors():
    rng = random.Random(99)
    for _ in range(60):
        sformula = random_selector(rng)
        rendered = selector_to_string(sformula)
        pattern2, node2 = parse_selector(rendered)
        for _ in range(5):
            pdoc = random_pdocument(rng)
            document = random_instance(pdoc, rng)
            left = {v.uid for v in select(document.root, sformula)}
            right = {v.uid for v in select(document.root, SFormula(pattern2, node2))}
            assert left == right, rendered


def test_quoting_rules():
    assert render_predicate(LabelEquals("ph.d. st.")) == "'ph.d. st.'"
    assert render_predicate(LabelEquals(42)) == "42"
    assert render_predicate(LabelEquals("42")) == "'42'"  # string, not numeric
    assert render_predicate(LabelSuffix("full professor")) == "~'full professor'"
    assert render_predicate(ANY) == "*"


def test_unrenderable_predicates_rejected():
    with pytest.raises(RenderError):
        render_predicate(NodeIs(7))


def test_pattern_without_projection():
    pattern, _ = parse_pattern("a/b[c]//d")
    rendered = pattern_to_string(pattern)
    reparsed, _ = parse_pattern(rendered)
    assert reparsed.size() == pattern.size()


def test_constraint_round_trip():
    constraint = c2()
    text = constraint_to_string(constraint)
    assert text.startswith("C2: forall")
    reparsed = parse_constraint(text.split(": ", 1)[1], name="C2")
    figure2 = figure2_document()
    assert reparsed.satisfied_by(figure2) == constraint.satisfied_by(figure2)
    # and on a counterexample
    broken = figure2.copy()
    mary_position = broken.root.children[0].children[0].children[1]
    chair = next(c for c in mary_position.children if c.label == "chair")
    mary_position._children.remove(chair)
    assert reparsed.satisfied_by(broken) == constraint.satisfied_by(broken)


def test_augmented_selector_rejected():
    from repro.core.formulas import CountAtom

    base_pattern, node = parse_selector("a/$b")
    base = SFormula(base_pattern, node)
    refined = base.with_alpha(node, CountAtom([base], ">=", 1))
    with pytest.raises(RenderError):
        selector_to_string(refined)
