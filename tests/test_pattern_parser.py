"""Unit tests for the textual pattern/selector syntax."""

from __future__ import annotations


import pytest

from repro.xmltree.parser import (
    PatternSyntaxError,
    parse_boolean_pattern,
    parse_pattern,
    parse_selector,
)
from repro.xmltree.pattern import CHILD, DESC
from repro.xmltree.predicates import AnyLabel, LabelEquals, LabelSuffix


def test_simple_chain():
    pattern, projections = parse_pattern("university/department//member")
    nodes = list(pattern.nodes())
    assert len(nodes) == 3
    assert projections == {}
    assert isinstance(nodes[0].predicate, LabelEquals)
    assert nodes[1].axis == CHILD
    assert nodes[2].axis == DESC


def test_leading_slash_is_optional():
    left, _ = parse_pattern("/a/b")
    right, _ = parse_pattern("a/b")
    assert left.size() == right.size() == 2


def test_star_predicate():
    pattern, _ = parse_pattern("*//*")
    assert all(isinstance(n.predicate, AnyLabel) for n in pattern.nodes())


def test_suffix_predicate():
    pattern, _ = parse_pattern("member/~professor")
    leaf = list(pattern.nodes())[1]
    assert isinstance(leaf.predicate, LabelSuffix)
    assert leaf.predicate.suffix == "professor"


def test_quoted_labels():
    pattern, _ = parse_pattern("member/'ph.d. st.'")
    leaf = list(pattern.nodes())[1]
    assert leaf.predicate.value == "ph.d. st."


def test_quoted_suffix():
    pattern, _ = parse_pattern("member/~'full professor'")
    leaf = list(pattern.nodes())[1]
    assert isinstance(leaf.predicate, LabelSuffix)
    assert leaf.predicate.suffix == "full professor"


def test_numeric_labels():
    pattern, _ = parse_pattern("values/42")
    leaf = list(pattern.nodes())[1]
    assert leaf.predicate.value == 42


def test_quoted_numerals_stay_strings():
    pattern, _ = parse_pattern("values/'42'")
    leaf = list(pattern.nodes())[1]
    assert leaf.predicate.value == "42"


def test_branches():
    pattern, _ = parse_pattern("member[position/chair][//~professor]/name")
    root = pattern.root
    assert len(root.children) == 3  # two branches + the spine child
    branch1, branch2, spine = root.children
    assert branch1.axis == CHILD and branch1.children[0].predicate.value == "chair"
    assert branch2.axis == DESC
    assert spine.predicate.value == "name"


def test_nested_branches():
    pattern, _ = parse_pattern("a[b[c]/d]")
    b = pattern.root.children[0]
    assert {child.predicate.value for child in b.children} == {"c", "d"}


def test_selector_marker():
    pattern, node = parse_selector("university/$department")
    assert node.predicate.value == "department"
    assert node is list(pattern.nodes())[1]


def test_selector_on_root():
    pattern, node = parse_selector("$*[position/chair]")
    assert node is pattern.root


def test_multi_projection_positions():
    pattern, projections = parse_pattern("a/$2:b/$1:c")
    assert projections[2].predicate.value == "b"
    assert projections[1].predicate.value == "c"


def test_projection_positions_must_be_dense():
    with pytest.raises(PatternSyntaxError):
        parse_pattern("a/$3:b")


def test_duplicate_projection_rejected():
    with pytest.raises(PatternSyntaxError):
        parse_pattern("a/$1:b/$1:c")


def test_selector_requires_exactly_one_marker():
    with pytest.raises(PatternSyntaxError):
        parse_selector("a/b")
    with pytest.raises(PatternSyntaxError):
        parse_selector("$a/$b")


def test_boolean_pattern_rejects_markers():
    with pytest.raises(PatternSyntaxError):
        parse_boolean_pattern("a/$b")
    assert parse_boolean_pattern("a/b").size() == 2


@pytest.mark.parametrize("bad", ["", "a/", "a//", "a[b", "a]b", "'unterminated"])
def test_syntax_errors(bad):
    with pytest.raises(PatternSyntaxError):
        parse_pattern(bad)
