"""Differential + property coverage for the batched numpy circuit backend.

The batch backend's contract (docs/CIRCUIT.md) is *bitwise*: column i of
``forward_batch`` equals the scalar float64 forward at binding i, double
for double — both the interpreted sweep and the codegen'd kernel.  These
tests certify it on random circuits (the PR-5 differential harness's
input distribution), check gradients against the scalar reverse sweep
bitwise and against exact central finite differences (the outputs are
multilinear, so Fraction differences are exact), and pin the interval
containment every float64 result already enjoys.
"""

from __future__ import annotations

import struct
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.evaluator import probabilities
from repro.numeric import Interval
from repro.workloads.random_gen import random_formula, random_pdocument

from .strategies import DEFAULT_SETTINGS, reestimate, rngs

np = pytest.importorskip("numpy")

from repro.circuit import BatchBinding, compile_formulas  # noqa: E402
from repro.circuit.batch import run_forward_batch  # noqa: E402
from repro.circuit.kernel import compile_kernel, emit_source  # noqa: E402
from repro.pdoc.parameters import parameter_values, scaled_edge_bindings  # noqa: E402


def _bits(value: float) -> bytes:
    return struct.pack("<d", float(value))


def _random_bindings(pdoc, rng, count: int) -> list[list[Fraction]]:
    """Scaled + jittered bindings: every edge probability swept, the
    occasional re-estimated document for awkward denominators."""
    factors = [
        Fraction(rng.randrange(1, 1_000_000), 1_000_000) for _ in range(count)
    ]
    return scaled_edge_bindings(pdoc, factors)


# -- forward: bitwise equality with the scalar float64 sweep ------------------

@given(rng=rngs(), count=st.integers(min_value=1, max_value=7))
@DEFAULT_SETTINGS
def test_forward_batch_columns_match_scalar_float64_bitwise(rng, count):
    pdoc = random_pdocument(rng, allow_exp=True)
    formulas = [random_formula(rng) for _ in range(2)]
    circuit = compile_formulas(pdoc, formulas)
    rows = _random_bindings(pdoc, rng, count)
    batch = BatchBinding.from_rows(rows)
    kernel_out = circuit.forward_batch(batch)
    interp_out = circuit.forward_batch(batch, use_kernel=False)
    assert kernel_out.shape == (len(circuit.outputs), count)
    # Kernel and interpreter agree bitwise with each other...
    assert kernel_out.tobytes() == interp_out.tobytes()
    # ...and each column agrees bitwise with the scalar fast path.
    for i, row in enumerate(rows):
        circuit.set_param_values(row)
        scalar = circuit.forward(backend="float64")
        for j, value in enumerate(scalar):
            assert _bits(value) == _bits(kernel_out[j, i])


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_forward_batch_contained_in_interval_bounds(rng):
    pdoc = random_pdocument(rng, allow_exp=True)
    formulas = [random_formula(rng) for _ in range(2)]
    circuit = compile_formulas(pdoc, formulas)
    rows = _random_bindings(pdoc, rng, 4)
    outputs = circuit.forward_batch(BatchBinding.from_rows(rows))
    for i, row in enumerate(rows):
        circuit.set_param_values(row)
        enclosures = circuit.forward(backend="interval")
        for j, enclosure in enumerate(enclosures):
            assert isinstance(enclosure, Interval)
            assert enclosure.lo <= outputs[j, i] <= enclosure.hi


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_forward_batch_on_reestimated_parameters(rng):
    """The awkward-denominator regime: 6-significant-digit rationals from
    ``reestimate`` as bindings, batch still bitwise equal to scalar."""
    pdoc = random_pdocument(rng, numeric=True)
    formulas = [random_formula(rng, allow_ratio=False)]
    circuit = compile_formulas(pdoc, formulas)
    rows = [parameter_values(reestimate(pdoc, rng)) for _ in range(3)]
    outputs = circuit.forward_batch(rows)
    for i, row in enumerate(rows):
        circuit.set_param_values(row)
        for j, value in enumerate(circuit.forward(backend="float64")):
            assert _bits(value) == _bits(outputs[j, i])


# -- gradients ----------------------------------------------------------------

@given(rng=rngs())
@DEFAULT_SETTINGS
def test_gradient_batch_matches_scalar_float64_bitwise(rng):
    pdoc = random_pdocument(rng, allow_exp=True)
    circuit = compile_formulas(pdoc, [random_formula(rng)])
    rows = _random_bindings(pdoc, rng, 5)
    gradients = circuit.gradient_batch(BatchBinding.from_rows(rows), output=0)
    assert gradients.shape == (circuit.num_params, 5)
    for i, row in enumerate(rows):
        circuit.set_param_values(row)
        scalar = circuit.gradient(0, backend="float64")
        for position, value in enumerate(scalar):
            assert _bits(value) == _bits(gradients[position, i])


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_gradient_batch_matches_exact_central_differences(rng):
    """Outputs are multilinear in every parameter, so exact central
    differences equal the exact derivative; the float64 batch gradient
    must agree with it to float64 forward-difference accuracy (here:
    compared against the float of the exact derivative with a tolerance
    scaled to the circuit)."""
    pdoc = random_pdocument(rng)
    circuit = compile_formulas(pdoc, [random_formula(rng, allow_ratio=False)])
    if not circuit.num_params:
        return
    row = parameter_values(pdoc)
    gradients = circuit.gradient_batch([row], output=0)
    step = Fraction(1, 9)
    k = rng.randrange(circuit.num_params)
    plus = list(row)
    minus = list(row)
    plus[k] = row[k] + step
    minus[k] = row[k] - step
    circuit.set_param_values(plus)
    upper = circuit.forward()[0]
    circuit.set_param_values(minus)
    lower = circuit.forward()[0]
    exact = (upper - lower) / (2 * step)
    assert gradients[k, 0] == pytest.approx(float(exact), rel=1e-9, abs=1e-12)


# -- the forward value itself stays truthful ----------------------------------

@given(rng=rngs())
@DEFAULT_SETTINGS
def test_forward_batch_tracks_exact_evaluator(rng):
    """End-to-end sanity: batch float64 values approximate the exact
    evaluator's Fractions at every binding (loose tolerance — the tight
    statement is bitwise equality with the scalar float64 path above)."""
    pdoc = random_pdocument(rng)
    formula = random_formula(rng, allow_ratio=False)
    circuit = compile_formulas(pdoc, [formula])
    rows = _random_bindings(pdoc, rng, 3)
    outputs = circuit.forward_batch(rows)
    from repro.pdoc.parameters import apply_parameters

    for i, row in enumerate(rows):
        apply_parameters(pdoc, row)
        exact = probabilities(pdoc, [formula])[0]
        assert outputs[0, i] == pytest.approx(float(exact), rel=1e-9, abs=1e-12)


# -- BatchBinding / kernel unit behavior --------------------------------------

def test_batch_binding_validation():
    with pytest.raises(ValueError, match="at least one binding"):
        BatchBinding.from_rows([])
    with pytest.raises(ValueError, match="binding 1 has 1 values"):
        BatchBinding.from_rows([[0.5, 0.5], [0.5]])
    with pytest.raises(ValueError, match="matrix"):
        BatchBinding(np.zeros(3))
    binding = BatchBinding.from_rows([[Fraction(1, 3), 1], [0.25, 0]])
    assert binding.n == 2
    assert binding.num_params == 2
    assert binding.column(0) == [float(Fraction(1, 3)), 1.0]
    assert len(binding) == 2


def test_forward_batch_rejects_wrong_width():
    import random

    pdoc = random_pdocument(random.Random(7))
    circuit = compile_formulas(pdoc, [random_formula(random.Random(8))])
    wrong = [[Fraction(1, 2)] * (circuit.num_params + 1)]
    with pytest.raises(ValueError, match="parameter values per binding"):
        circuit.forward_batch(wrong)


def test_kernel_source_shape():
    import random

    pdoc = random_pdocument(random.Random(3))
    circuit = compile_formulas(pdoc, [random_formula(random.Random(4))])
    source = emit_source(circuit)
    assert source.startswith("def _kernel(P, out):")
    assert compile_kernel(circuit) is not None
    # ADD chains carry the scalar sum()'s zero seed.
    for line in source.splitlines():
        if " + " in line and "=" in line:
            assert "= 0.0 + " in line


def test_kernel_declines_oversized_circuits(monkeypatch):
    import random

    from repro.circuit import kernel as kernel_module

    pdoc = random_pdocument(random.Random(5))
    circuit = compile_formulas(pdoc, [random_formula(random.Random(6))])
    monkeypatch.setattr(kernel_module, "KERNEL_GATE_LIMIT", -1)
    assert compile_kernel(circuit) is None
    # forward_batch falls back to the interpreted sweep and still answers.
    rows = [parameter_values(pdoc)]
    assert circuit._batch_kernel is None
    outputs = circuit.forward_batch(rows)
    assert circuit._batch_kernel is False
    expected = run_forward_batch(circuit, BatchBinding.from_rows(rows).values)
    assert outputs.tobytes() == expected.tobytes()


def test_get_backend_batch_names_the_sweep_api():
    from repro.numeric import get_backend

    with pytest.raises(ValueError, match="forward_batch"):
        get_backend("batch")
