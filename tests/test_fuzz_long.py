"""The acceptance-grade fuzz run (ISSUE 10): 200 generated instances
through the full differential suite with zero disagreements, at full
pairwise coverage of the declared feature axes.

Marked ``fuzz`` and excluded from tier-1 (see pyproject.toml); run with

    PYTHONPATH=src python -m pytest tests/test_fuzz_long.py -m fuzz

or equivalently ``repro fuzz --seed 2026 --budget 200``.
"""

from __future__ import annotations

import pytest

from repro.service.metrics import Metrics
from repro.workloads.fuzz import run_fuzz


@pytest.mark.fuzz
def test_two_hundred_instances_zero_disagreements(tmp_path):
    metrics = Metrics()
    report = run_fuzz(
        seed=2026, budget=200, artifact_dir=tmp_path, metrics=metrics
    )
    assert report.instances == 200
    assert report.disagreements == 0, [
        (f.stage, f.spec.name, f.seed, f.detail) for f in report.failures
    ]
    # Every differential stage exercised many times over the run.
    assert report.checks["exact-dp"] == 200
    assert report.checks["float64"] == 200
    assert report.checks["interval"] == 200
    assert report.checks["auto"] == 200
    assert report.checks["circuit"] == 200
    assert report.checks["rebind"] == 200
    assert report.checks["enum"] >= 150
    assert report.checks["approx"] >= 150
    # Full pairwise coverage of the declared axes (≥ 95% required).
    assert report.ledger.coverage() >= 0.95
    assert metrics.counter("fuzz.instances") == 200
    assert not list(tmp_path.iterdir())
