"""Golden snapshots of end-to-end outputs (tests/golden/*.json).

These freeze the *rendered* results — exact probability strings, float64
reprs, answer orderings — of three representative workloads, so a change
anywhere in the stack (parser, DP, circuits, numeric backends, service
formatting) that shifts an observable output fails loudly with a diff.
Regenerate intentionally with ``pytest tests/test_golden.py --update-golden``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.constraints import constraints_formula
from repro.core.evaluator import probabilities, probability
from repro.core.formulas import CountAtom
from repro.core.pxdb import PXDB
from repro.core.query import selector
from repro.core.topk import top_k_worlds
from repro.numeric import value_fields
from repro.service.server import query_payload, sat_payload
from repro.service.store import DocumentStore
from repro.workloads.synthetic import exp_pdocument
from repro.workloads.university import (
    figure1_constraints,
    figure1_pdocument,
    scaled_university,
)
from repro.xmltree.serialize import document_to_xml


def _entry(pdoc):
    store = DocumentStore()
    store.add("db", PXDB(pdoc, figure1_constraints()))
    return store.get("db")


def test_golden_figure1(golden):
    entry = _entry(figure1_pdocument())
    condition = constraints_formula(figure1_constraints())
    payload = {
        "sat": {
            backend: sat_payload(entry, backend=backend)
            for backend in ("exact", "float64", "auto")
        },
        "query": query_payload(entry, "university/department/member/name/$*"),
        "query_auto": query_payload(
            entry, "university/department/member/name/$*", backend="auto"
        ),
        "top_worlds": [
            {"probability": str(prob), "document": document_to_xml(doc, style="tags")}
            for doc, prob in top_k_worlds(figure1_pdocument(), 3, condition)
        ],
    }
    golden("figure1", payload)


def test_golden_university_scaled(golden):
    pdoc = scaled_university(3, 2, 2)
    condition = constraints_formula(figure1_constraints())
    exact = probability(pdoc, condition)
    payload = {
        "constraint_probability": str(exact),
        "constraint_probability_float64": repr(
            probability(pdoc, condition, backend="float64")
        ),
        "auto": value_fields(probability(pdoc, condition, backend="auto"))[0],
    }
    golden("university", payload)


def test_golden_exp_aggregate(golden):
    pdoc = exp_pdocument(2)
    formulas = [
        CountAtom([selector("root/$*")], ">=", 2),
        CountAtom([selector("root/$*")], "=", 0),
        CountAtom([selector("root/$*")], "<=", 4),
    ]
    exact = probabilities(pdoc, formulas)
    approx = probabilities(pdoc, formulas, backend="float64")
    payload = {
        "exact": [str(value) for value in exact],
        "float64": [repr(value) for value in approx],
        "auto_signs": [
            bool(value > 0)
            for value in probabilities(pdoc, formulas, backend="auto")
        ],
    }
    golden("exp_aggregate", payload)
