"""Property-based differential tests: the polynomial evaluation algorithm
(Theorem 5.3) must agree *exactly* (Fraction equality) with the exponential
possible-worlds baseline on randomized p-documents and formulae.

This is the central correctness argument of the reproduction: the two
implementations share no code above the document level (the baseline uses
the Definition 5.2 document semantics over enumerated worlds; the
evaluator uses compiled automata and the signature DP).

Input distributions live in :mod:`tests.strategies`, shared with the
circuit and numeric-backend differential suites.
"""

from __future__ import annotations

from hypothesis import given

from repro.baseline.naive import naive_probability
from repro.core.evaluator import probability
from repro.core.formulas import conjunction, disjunction, negation
from repro.workloads.random_gen import random_formula, random_pdocument

from .strategies import DEFAULT_SETTINGS, rngs


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_count_formulae_match_baseline(rng):
    pdoc = random_pdocument(rng)
    formula = random_formula(rng, allow_ratio=False)
    assert probability(pdoc, formula) == naive_probability(pdoc, formula)


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_ratio_formulae_match_baseline(rng):
    pdoc = random_pdocument(rng)
    formula = random_formula(rng, allow_ratio=True)
    assert probability(pdoc, formula) == naive_probability(pdoc, formula)


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_exp_nodes_match_baseline(rng):
    pdoc = random_pdocument(rng, allow_exp=True)
    formula = random_formula(rng)
    assert probability(pdoc, formula) == naive_probability(pdoc, formula)


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_minmax_formulae_match_baseline(rng):
    pdoc = random_pdocument(rng, numeric=True)
    formula = random_formula(rng, allow_minmax=True)
    assert probability(pdoc, formula) == naive_probability(pdoc, formula)


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_probability_axioms(rng):
    """Pr(γ) + Pr(¬γ) = 1; monotonicity of conjunction/disjunction."""
    pdoc = random_pdocument(rng)
    f = random_formula(rng)
    g = random_formula(rng)
    pf = probability(pdoc, f)
    assert probability(pdoc, negation(f)) == 1 - pf
    p_and = probability(pdoc, conjunction([f, g]))
    p_or = probability(pdoc, disjunction([f, g]))
    pg = probability(pdoc, g)
    assert p_and <= min(pf, pg)
    assert p_or >= max(pf, pg)
    # inclusion-exclusion
    assert p_and + p_or == pf + pg
