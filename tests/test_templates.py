"""Tests for the constraint-template library."""

from __future__ import annotations

import pytest

from repro.core import templates
from repro.core.constraints import satisfies_all
from repro.xmltree.document import Document, doc


@pytest.fixture()
def store():
    return Document(
        doc(
            "store",
            doc("aisle", doc("item", "apple"), doc("item", "pear"), "sign"),
            doc("aisle", doc("item", "milk")),
        )
    )


def test_at_most(store):
    assert templates.at_most("store/$aisle", "*/$item", 2).satisfied_by(store)
    assert not templates.at_most("store/$aisle", "*/$item", 1).satisfied_by(store)


def test_at_least(store):
    assert templates.at_least("store/$aisle", "*/$item", 1).satisfied_by(store)
    assert not templates.at_least("store/$aisle", "*/$item", 2).satisfied_by(store)


def test_exactly(store):
    assert templates.exactly("$store", "*/$aisle", 2).satisfied_by(store)
    assert not templates.exactly("$store", "*/$aisle", 3).satisfied_by(store)


def test_between(store):
    both = templates.between("store/$aisle", "*/$item", 1, 2)
    assert len(both) == 2
    assert satisfies_all(store, both)
    assert not satisfies_all(store, templates.between("store/$aisle", "*/$item", 2, 3))


def test_between_rejects_empty_range():
    with pytest.raises(ValueError):
        templates.between("$a", "*/$b", 3, 1)


def test_unique(store):
    assert templates.unique("store/$aisle", "*/$sign").satisfied_by(store)
    assert not templates.unique("store/$aisle", "*/$item").satisfied_by(store)
    assert templates.unique("$a", "*/$b").name == "unique"


def test_requires(store):
    # an aisle with a sign must have at least one item: holds
    assert templates.requires("store/$aisle", "*/$sign", "*/$item").satisfied_by(store)
    # an aisle with an item must have a sign: fails for the milk aisle
    assert not templates.requires("store/$aisle", "*/$item", "*/$sign").satisfied_by(
        store
    )


def test_excludes(store):
    assert templates.excludes("store/$aisle", "*/$lamp", "*/$item").satisfied_by(store)
    assert not templates.excludes("store/$aisle", "*/$sign", "*/$item").satisfied_by(
        store
    )


def test_implies_within(store):
    c = templates.implies_within(
        "store/$aisle", "*/$item", ">=", 2, "*/$sign", ">=", 1, name="busy-aisle"
    )
    assert c.satisfied_by(store)
    assert c.name == "busy-aisle"


def test_conditional_presence(store):
    c = templates.conditional_presence("store/$aisle", "sign", "item")
    assert c.satisfied_by(store)
    c2 = templates.conditional_presence("store/$aisle", "item", "sign")
    assert not c2.satisfied_by(store)
    assert "sign-needs-item" == templates.conditional_presence(
        "store/$aisle", "sign", "item"
    ).name


def test_templates_accept_sformulas(store):
    from repro.core.query import selector

    scope = selector("store/$aisle")
    items = selector("*/$item")
    assert templates.at_most(scope, items, 2).satisfied_by(store)


def test_templates_compose_with_pxdb():
    from fractions import Fraction

    from repro.core.pxdb import PXDB
    from repro.pdoc.pdocument import pdocument

    pd, root = pdocument("store")
    aisle = root.ordinary("aisle")
    aisle.ind().add_edge("item", Fraction(1, 2))
    pd.validate()
    db = PXDB(pd, [templates.at_least("store/$aisle", "*/$item", 1)])
    assert db.constraint_probability() == Fraction(1, 2)
