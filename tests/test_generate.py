"""Tests for unconditioned random-instance generation (Section 3.1)."""

from __future__ import annotations

import random
from fractions import Fraction

from repro.pdoc.enumerate import world_distribution
from repro.pdoc.generate import random_instance, random_world
from repro.pdoc.pdocument import PNode, pdocument
from repro.workloads.random_gen import random_pdocument


def test_instances_are_worlds():
    rng = random.Random(3)
    pd = random_pdocument(rng, allow_exp=True)
    support = set(world_distribution(pd))
    for _ in range(200):
        assert random_world(pd, rng) in support


def test_deterministic_pdocument_generates_itself():
    pd, root = pdocument("r")
    ind = root.ind()
    a = ind.add_edge("a", Fraction(1))
    ind.add_edge("b", Fraction(0))
    pd.validate()
    rng = random.Random(0)
    for _ in range(10):
        assert random_world(pd, rng) == frozenset({root.uid, a.uid})


def test_distributional_nodes_vanish():
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1))
    leaf = inner.add_edge("x", Fraction(1))
    pd.validate()
    document = random_instance(pd, random.Random(1))
    # x hangs directly off r in the document (lowest ordinary ancestor).
    assert document.root.label == "r"
    assert [c.label for c in document.root.children] == ["x"]


def test_empirical_distribution_close_to_exact():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    mux = root.mux()
    mux.add_edge("b", Fraction(3, 5))
    mux.add_edge("c", Fraction(2, 5))
    pd.validate()
    exact = world_distribution(pd)
    rng = random.Random(42)
    n = 8000
    counts: dict[frozenset[int], int] = {}
    for _ in range(n):
        world = random_world(pd, rng)
        counts[world] = counts.get(world, 0) + 1
    tv = sum(abs(counts.get(k, 0) / n - float(p)) for k, p in exact.items()) / 2
    assert tv < 0.03, f"total variation too large: {tv}"


def test_exp_subsets_respected():
    pd, root = pdocument("r")
    exp = root.exp()
    a = exp.add_exp_child("a")
    b = exp.add_exp_child("b")
    # a and b always appear together or not at all
    exp.set_exp_distribution([((0, 1), Fraction(1, 2)), ((), Fraction(1, 2))])
    pd.validate()
    rng = random.Random(7)
    for _ in range(100):
        world = random_world(pd, rng)
        assert (a.uid in world) == (b.uid in world)
