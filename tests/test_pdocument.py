"""Unit tests for p-documents (Section 3.1 + exp nodes of Section 7.3)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.pdoc.pdocument import IND, MUX, ORD, PDocument, PNode, pdocument


def small_pdoc():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    mux = root.mux()
    mux.add_edge("b", Fraction(1, 4))
    mux.add_edge("c", Fraction(1, 2))
    pd.validate()
    return pd, root


def test_node_kinds():
    node = PNode(ORD, "x")
    assert node.is_ordinary() and not node.is_distributional()
    dist = PNode(IND)
    assert dist.is_distributional()


def test_ordinary_needs_label():
    with pytest.raises(ValueError):
        PNode(ORD)
    with pytest.raises(ValueError):
        PNode(IND, label="x")
    with pytest.raises(ValueError):
        PNode("bogus", "x")


def test_dist_edges_enumeration():
    pd, _ = small_pdoc()
    edges = pd.dist_edges()
    assert len(edges) == 3
    kinds = [node.kind for node, _ in edges]
    assert kinds == [IND, MUX, MUX]


def test_edge_prob():
    pd, _ = small_pdoc()
    (ind, i0), (mux, j0), (mux2, j1) = pd.dist_edges()
    assert pd.edge_prob(ind, i0) == Fraction(1, 2)
    assert pd.edge_prob(mux, j0) == Fraction(1, 4)
    assert pd.edge_prob(mux2, j1) == Fraction(1, 2)


def test_validate_rejects_distributional_root():
    root = PNode(IND)
    root.add_edge("a", Fraction(1, 2))
    with pytest.raises(ValueError):
        PDocument(root)


def test_validate_rejects_distributional_leaf():
    pd, root = pdocument("r")
    root.ind()
    with pytest.raises(ValueError):
        pd.validate()


def test_validate_rejects_mux_oversum():
    pd, root = pdocument("r")
    mux = root.mux()
    mux.add_edge("a", Fraction(3, 4))
    mux.add_edge("b", Fraction(1, 2))
    with pytest.raises(ValueError):
        pd.validate()


def test_edge_probability_range_checked():
    pd, root = pdocument("r")
    ind = root.ind()
    with pytest.raises(ValueError):
        ind.add_edge("a", Fraction(5, 4))


def test_add_edge_only_below_dist_nodes():
    pd, root = pdocument("r")
    with pytest.raises(ValueError):
        root.add_edge("a", Fraction(1, 2))
    ind = root.ind()
    with pytest.raises(ValueError):
        ind.ordinary("a")


def test_exp_distribution_validation():
    pd, root = pdocument("r")
    exp = root.exp()
    exp.add_exp_child("a")
    exp.add_exp_child("b")
    with pytest.raises(ValueError):
        exp.set_exp_distribution([((0,), Fraction(1, 2))])  # sums to 1/2
    with pytest.raises(ValueError):
        exp.set_exp_distribution([((5,), Fraction(1))])  # bad index
    with pytest.raises(ValueError):
        exp.set_exp_distribution(
            [((0,), Fraction(1, 2)), ((0,), Fraction(1, 2))]
        )  # duplicate subset
    exp.set_exp_distribution([((0, 1), Fraction(1, 3)), ((), Fraction(2, 3))])
    pd.validate()
    assert pd.edge_prob(exp, 0) == Fraction(1, 3)
    assert pd.edge_prob(exp, 1) == Fraction(1, 3)


def test_skeleton_collapses_distributional_nodes():
    pd, root = small_pdoc()
    skeleton = pd.skeleton()
    assert skeleton.root.label == "r"
    assert sorted(c.label for c in skeleton.root.children) == ["a", "b", "c"]
    # uids carried over from the ordinary p-nodes
    assert skeleton.uid_set() == {n.uid for n in pd.ordinary_nodes()}


def test_clone_is_deep_and_preserves_uids():
    pd, _ = small_pdoc()
    clone = pd.clone()
    assert clone.root is not pd.root
    assert {n.uid for n in clone.ordinary_nodes()} == {
        n.uid for n in pd.ordinary_nodes()
    }
    clone.dist_edges()[0][0].probs[0] = Fraction(0)
    assert pd.dist_edges()[0][0].probs[0] == Fraction(1, 2)


def test_conditioned_on_ind_edge():
    pd, _ = small_pdoc()
    edge = pd.dist_edges()[0]
    chosen = pd.conditioned_on_edge(edge, True)
    assert chosen.dist_edges()[0][0].probs[0] == 1
    dropped = pd.conditioned_on_edge(edge, False)
    assert dropped.dist_edges()[0][0].probs[0] == 0


def test_conditioned_on_mux_edge_renormalizes():
    pd, _ = small_pdoc()
    edge = pd.dist_edges()[1]  # mux child b with prob 1/4
    chosen = pd.conditioned_on_edge(edge, True)
    mux = chosen.dist_edges()[1][0]
    assert mux.probs == [Fraction(1), Fraction(0)]
    dropped = pd.conditioned_on_edge(edge, False)
    mux = dropped.dist_edges()[1][0]
    # sibling c renormalized by 1/(1 - 1/4)
    assert mux.probs == [Fraction(0), Fraction(2, 3)]


def test_conditioned_on_exp_edge():
    pd, root = pdocument("r")
    exp = root.exp()
    exp.add_exp_child("a")
    exp.add_exp_child("b")
    exp.set_exp_distribution(
        [((0, 1), Fraction(1, 4)), ((0,), Fraction(1, 4)), ((), Fraction(1, 2))]
    )
    pd.validate()
    edge = (exp, 0)
    chosen = pd.conditioned_on_edge(edge, True)
    new_exp = chosen.dist_edges()[0][0]
    assert sorted((tuple(sorted(s)), p) for s, p in new_exp.subsets) == [
        ((0,), Fraction(1, 2)),
        ((0, 1), Fraction(1, 2)),
    ]
    dropped = pd.conditioned_on_edge(edge, False)
    new_exp = dropped.dist_edges()[0][0]
    assert [(tuple(sorted(s)), p) for s, p in new_exp.subsets] == [((), Fraction(1))]


def test_conditioning_guards():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(0))
    ind.add_edge("b", Fraction(1))
    pd.validate()
    with pytest.raises(ValueError):
        pd.conditioned_on_edge((pd.dist_edges()[0]), True)  # prob 0 chosen
    with pytest.raises(ValueError):
        pd.conditioned_on_edge((pd.dist_edges()[1]), False)  # prob 1 dropped


def test_document_from_uids_requires_root():
    pd, root = small_pdoc()
    with pytest.raises(ValueError):
        pd.document_from_uids(frozenset())
    document = pd.document_from_uids(frozenset({root.uid}))
    assert document.size() == 1
