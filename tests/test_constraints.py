"""Tests for constraints (Definition 2.2) and their translation (Sec 5.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.constraints import (
    Constraint,
    always,
    constraints_formula,
    satisfies_all,
)
from repro.core.formulas import DocumentEvaluator, SFormula, TRUE
from repro.core.constraint_parser import (
    ConstraintSyntaxError,
    parse_constraint,
    parse_constraints,
)
from repro.pdoc.generate import random_instance
from repro.workloads.random_gen import random_pdocument, random_selector
from repro.xmltree.document import Document, doc
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


@pytest.fixture()
def library():
    return Document(
        doc(
            "library",
            doc("shelf", doc("book", "old"), doc("book", "old"), "lamp"),
            doc("shelf", doc("book", "new")),
        )
    )


def test_constraint_satisfaction_basic(library):
    # every shelf with >= 2 books has a lamp
    c = Constraint(
        sel("library/$shelf"), sel("*/$book"), ">=", 2, sel("*/$lamp"), ">=", 1
    )
    assert c.satisfied_by(library)
    # every shelf with >= 1 book has a lamp: violated by the second shelf
    c2 = Constraint(
        sel("library/$shelf"), sel("*/$book"), ">=", 1, sel("*/$lamp"), ">=", 1
    )
    assert not c2.satisfied_by(library)


def test_always_constraint(library):
    c = always(sel("library/$shelf"), sel("*/$book"), "<=", 2)
    assert c.satisfied_by(library)
    c2 = always(sel("library/$shelf"), sel("*/$book"), ">=", 2)
    assert not c2.satisfied_by(library)


def test_quantifier_scopes_subtree(library):
    # Inside a shelf subtree, */$book counts only that shelf's books.
    c = always(sel("library/$shelf"), sel("*//$book"), "<=", 2)
    assert c.satisfied_by(library)


def test_empty_scope_is_vacuous(library):
    c = always(sel("library/$attic"), sel("$*"), ">=", 100)
    assert c.satisfied_by(library)


def test_satisfies_all(library, figure2, constraints_c1_c4):
    assert satisfies_all(figure2, constraints_c1_c4)
    c_bad = always(sel("library/$shelf"), sel("*/$book"), ">=", 3)
    assert not satisfies_all(library, [c_bad])


def test_translation_agrees_with_direct_semantics():
    """The Section 5.1 translation must coincide with Definition 2.2 on
    random documents (for constraints over random selectors)."""
    rng = random.Random(77)
    checked = 0
    for _ in range(120):
        pd = random_pdocument(rng)
        scope = random_selector(rng)
        s1 = random_selector(rng)
        s2 = random_selector(rng)
        ops = ("=", "!=", "<", "<=", ">", ">=")
        c = Constraint(
            scope, s1, rng.choice(ops), rng.randint(0, 2),
            s2, rng.choice(ops), rng.randint(0, 2),
        )
        document = random_instance(pd, rng)
        direct = c.satisfied_by(document)
        translated = DocumentEvaluator().satisfies(document.root, c.to_cformula())
        assert direct == translated
        checked += 1
    assert checked == 120


def test_figure2_violations(figure2, constraints_c1_c4):
    """Example 2.3's two counterfactuals: removing Mary's chair violates C2;
    making Lisa an assistant professor violates C4."""
    c1, c2, c3, c4 = constraints_c1_c4

    no_chair = figure2.copy()
    mary_position = no_chair.root.children[0].children[0].children[1]
    chair = next(c for c in mary_position.children if c.label == "chair")
    mary_position._children.remove(chair)
    assert not c2.satisfied_by(no_chair)
    assert c1.satisfied_by(no_chair)

    lisa_assistant = figure2.copy()
    lisa_position = lisa_assistant.root.children[0].children[1].children[1]
    rank = next(c for c in lisa_position.children if c.label.endswith("professor"))
    rank.label = "assistant professor"
    assert not c4.satisfied_by(lisa_assistant)


def test_constraints_formula_conjunction(figure2, constraints_c1_c4):
    formula = constraints_formula(constraints_c1_c4)
    assert DocumentEvaluator().satisfies(figure2.root, formula)
    assert constraints_formula([]) is TRUE


def test_constraint_parser_round_trip(library):
    c = parse_constraint(
        "forall library/$shelf : count(*/$book) >= 2 -> count(*/$lamp) >= 1"
    )
    assert c.satisfied_by(library)
    c2 = parse_constraint("forall library/$shelf : count(*/$book) <= 2")
    assert c2.satisfied_by(library)


def test_constraint_parser_names():
    constraints = parse_constraints(
        """
        # C1 from the paper's Figure 1
        C1: forall university/$department : count(*//$member[position/~'professor'][position/chair]) <= 1
        forall university/$department : count(*//$member[//~'professor']) >= 3 -> count(*//$member[position/~'professor'][position/chair]) >= 1
        """
    )
    assert len(constraints) == 2
    assert constraints[0].name == "C1"
    assert constraints[1].name is None


def test_parsed_c1_c4_match_builtins(figure2):
    """The parser route and the programmatic route agree on Figure 2."""
    text = """
    C1: forall university/$department : count(*//$member[position/~'professor'][position/chair]) <= 1
    C2: forall university/$department : count(*//$member[//~'professor']) >= 3 -> count(*//$member[position/~'professor'][position/chair]) >= 1
    C3: forall *//$member[position/~'professor'][position/chair] : count($*[position/'full professor']) >= 1
    C4: forall *//$member[position/'assistant professor'] : count(*/$'ph.d. st.') <= 1
    """
    constraints = parse_constraints(text)
    assert [c.name for c in constraints] == ["C1", "C2", "C3", "C4"]
    assert satisfies_all(figure2, constraints)


@pytest.mark.parametrize(
    "bad",
    [
        "count(*/$a) >= 1",
        "forall $a count(*/$b) >= 1",
        "forall $a : size(*/$b) >= 1",
        "forall $a : count(*/$b) >= one",
        "forall $a : count(*/$b ~ 1",
    ],
)
def test_parser_rejects_garbage(bad):
    with pytest.raises(ConstraintSyntaxError):
        parse_constraint(bad)
