"""Tests for exact top-k worlds of a PXDB."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.naive import conditional_world_distribution
from repro.core.formulas import CountAtom, SFormula, TRUE
from repro.core.topk import has_stacked_distributional_nodes, top_k_worlds
from repro.pdoc.pdocument import PNode, pdocument
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def flat_pdoc():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(9, 10))
    ind.add_edge("b", Fraction(2, 10))
    mux = root.mux()
    mux.add_edge("c", Fraction(3, 10))
    mux.add_edge("d", Fraction(6, 10))
    pd.validate()
    return pd


def reference_ranking(pdoc, condition=TRUE):
    dist = conditional_world_distribution(pdoc, condition)
    return sorted(dist.items(), key=lambda kv: (-kv[1], sorted(kv[0])))


def test_flat_detection():
    assert not has_stacked_distributional_nodes(flat_pdoc())
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1, 2))
    inner.add_edge("x", Fraction(1, 2))
    pd.validate()
    assert has_stacked_distributional_nodes(pd)


def test_top_k_matches_enumeration_unconditioned():
    pdoc = flat_pdoc()
    reference = reference_ranking(pdoc)
    results = top_k_worlds(pdoc, 4)
    assert len(results) == 4
    for (document, prob), (uids, expected) in zip(results, reference):
        assert prob == expected
        assert document.uid_set() == uids or prob == expected  # ties may permute


def test_top_k_probabilities_decreasing():
    pdoc = flat_pdoc()
    results = top_k_worlds(pdoc, 12)  # 2·2 ind combos × 3 mux outcomes
    values = [p for _, p in results]
    assert values == sorted(values, reverse=True)
    assert sum(values) == 1
    assert len(results) == 12


def test_top_k_conditioned():
    pdoc = flat_pdoc()
    condition = CountAtom([sel("r/$a")], ">=", 1)
    reference = reference_ranking(pdoc, condition)
    results = top_k_worlds(pdoc, 3, condition)
    assert [p for _, p in results] == [p for _, p in reference[:3]]
    for document, _ in results:
        assert any(c.label == "a" for c in document.root.children)


def test_top_k_handles_k_larger_than_support():
    pdoc = flat_pdoc()
    condition = CountAtom([sel("r/$a")], ">=", 1) & CountAtom([sel("r/$c")], ">=", 1)
    results = top_k_worlds(pdoc, 100, condition)
    reference = reference_ranking(pdoc, condition)
    assert len(results) == len(reference)
    assert sum(p for _, p in results) == 1


def test_top_k_zero_and_inconsistent():
    pdoc = flat_pdoc()
    assert top_k_worlds(pdoc, 0) == []
    with pytest.raises(ValueError):
        top_k_worlds(pdoc, 1, CountAtom([sel("r/$zzz")], ">=", 1))


def test_top_k_stacked_falls_back_to_enumeration():
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1, 2))
    inner.add_edge("x", Fraction(1, 2))
    pd.validate()
    results = top_k_worlds(pd, 2)
    # worlds: {r} w.p. 3/4 (two assignments merge), {r, x} w.p. 1/4
    assert [p for _, p in results] == [Fraction(3, 4), Fraction(1, 4)]


def test_top_k_stacked_size_guard():
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1, 2))
    for _ in range(25):
        inner.add_edge("x", Fraction(1, 2))
    pd.validate()
    with pytest.raises(ValueError, match="stacked"):
        top_k_worlds(pd, 1, max_enumeration_edges=20)


def test_top_k_skipped_edge_admissibility_regression():
    """Regression: an ind edge inside a subtree that an ancestor decision
    can remove may be *skipped* (contributing weight 1), so bounding it by
    max(p, 1-p) < 1 was non-admissible and broke the output order."""
    pd, root = pdocument("c")
    mux = root.mux()
    mux.add_edge("b0", Fraction(1, 4))
    ind = root.ind()
    mid = PNode("ord", "b1")
    ind.add_edge(mid, Fraction(1, 2))
    mid.ind().add_edge("b2", Fraction(1, 2))
    deep = mid.ordinary("b3")
    deep.ind().add_edge("c4", Fraction(1, 2))
    pd.validate()
    reference = reference_ranking(pd)
    got = [p for _, p in top_k_worlds(pd, len(reference))]
    assert got == [p for _, p in reference]


def test_top_k_randomized_against_enumeration():
    rng = random.Random(3)
    checked = 0
    while checked < 12:
        pdoc = random_pdocument(rng, max_nodes=7)
        if has_stacked_distributional_nodes(pdoc):
            continue
        condition = random_formula(rng)
        try:
            reference = reference_ranking(pdoc, condition)
        except ValueError:
            continue
        checked += 1
        k = min(4, len(reference))
        results = top_k_worlds(pdoc, k, condition)
        assert [p for _, p in results] == [p for _, p in reference[:k]]
