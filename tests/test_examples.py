"""Smoke tests: every example program must run to completion.

Examples are part of the public surface; these tests keep them green.
They run in-process (imported as modules) so coverage tools see them and
failures produce real tracebacks.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path


EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def run_example(path: Path, capsys) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "university_directory",
        "clinical_trials_audit",
        "subset_sum_boundary",
        "model_expressiveness",
        "data_quality_report",
    } <= names


def test_quickstart(capsys):
    out = run_example(Path("examples/quickstart.py"), capsys)
    assert "Pr(P |= C)" in out
    assert "Dune" in out


def test_university_directory(capsys):
    out = run_example(Path("examples/university_directory.py"), capsys)
    assert "27/50" in out  # Example 3.2
    assert "0.5254" in out  # Example 3.4's conditioned value
    assert "satisfies C1..C4: True" in out


def test_clinical_trials_audit(capsys):
    out = run_example(Path("examples/clinical_trials_audit.py"), capsys)
    assert "WNC space well-defined? True" in out


def test_subset_sum_boundary(capsys):
    out = run_example(Path("examples/subset_sum_boundary.py"), capsys)
    assert "iff solvable" in out
    assert "polynomial, per the paper" in out


def test_model_expressiveness(capsys):
    out = run_example(Path("examples/model_expressiveness.py"), capsys)
    assert "identical document distributions" in out


def test_data_quality_report(capsys):
    out = run_example(Path("examples/data_quality_report.py"), capsys)
    assert "true world" in out
    assert "top-3 cleaned documents" in out
