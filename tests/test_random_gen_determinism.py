"""Determinism regression tests for the workload generators.

The package-wide contract (satellite of the fuzz PR): every generator is
driven by one caller-supplied ``random.Random``, so "same seed ⇒ same
instance" holds even under pytest-xdist, where module-level ``random``
state would be advanced in nondeterministic interleavings.  These tests
pin the behavior AND audit the package source so a stray ``random.foo()``
call cannot creep back in.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import pkgutil
import random

import pytest

import repro.workloads as workloads_pkg
from repro.pdoc.serialize import pdocument_to_xml
from repro.workloads.random_gen import (
    DEFAULT_SEED,
    random_formula,
    random_pdocument,
    random_selector,
    seeded_rng,
)
from repro.workloads.scraping import ScrapeModel, scrape
from repro.xmltree.document import Document, doc


@pytest.mark.parametrize("allow_exp,numeric", [
    (False, False), (True, False), (True, True),
])
def test_random_pdocument_same_seed_same_instance(allow_exp, numeric):
    first = random_pdocument(
        random.Random(123), allow_exp=allow_exp, numeric=numeric
    )
    second = random_pdocument(
        random.Random(123), allow_exp=allow_exp, numeric=numeric
    )
    assert pdocument_to_xml(first) == pdocument_to_xml(second)


def test_random_formula_and_selector_same_seed_same_repr():
    for seed in range(5):
        first = [
            repr(random_formula(random.Random(seed))),
            repr(random_selector(random.Random(seed))),
        ]
        second = [
            repr(random_formula(random.Random(seed))),
            repr(random_selector(random.Random(seed))),
        ]
        assert first == second


def test_generators_do_not_disturb_global_random_state():
    random.seed(999)
    expected = random.Random(999).random()
    random_pdocument(random.Random(0), allow_exp=True)
    random_formula(random.Random(1))
    assert random.random() == expected


def test_seeded_rng_is_fresh_and_deterministic():
    assert seeded_rng().random() == random.Random(DEFAULT_SEED).random()
    first, second = seeded_rng(5), seeded_rng(5)
    assert first is not second
    assert [first.random() for _ in range(3)] == [
        second.random() for _ in range(3)
    ]


def test_scrape_default_rng_is_deterministic():
    truth = Document(
        doc(
            "listing",
            doc("flat", doc("rooms", 3), doc("price", 1200)),
            doc("flat", doc("rooms", 2), doc("price", 900)),
        )
    )
    model = ScrapeModel()
    first = scrape(truth, model)
    second = scrape(truth, model)
    assert pdocument_to_xml(first) == pdocument_to_xml(second)


# -- source audit: no module-level random use anywhere in the package ---------

class _GlobalRandomUse(ast.NodeVisitor):
    """Flags ``random.<anything>`` except ``random.Random`` itself."""

    def __init__(self):
        self.violations: list[str] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "random"
            and node.attr != "Random"
        ):
            self.violations.append(f"random.{node.attr} at line {node.lineno}")
        self.generic_visit(node)


def test_no_workloads_module_touches_global_random_state():
    modules = [workloads_pkg] + [
        importlib.import_module(f"{workloads_pkg.__name__}.{info.name}")
        for info in pkgutil.iter_modules(workloads_pkg.__path__)
    ]
    assert len(modules) > 3
    for module in modules:
        checker = _GlobalRandomUse()
        checker.visit(ast.parse(inspect.getsource(module)))
        assert not checker.violations, (
            f"{module.__name__} uses module-level random state: "
            f"{checker.violations}"
        )
