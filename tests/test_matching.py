"""Tests for twig matching M(T, d), including a brute-force reference
implementation of the match definition (Section 2.3, conditions 1-4)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.xmltree import tree
from repro.xmltree.document import Document, doc
from repro.xmltree.matching import (
    count_matches,
    enumerate_matches,
    has_match,
    match_bits,
    selected_set,
)
from repro.xmltree.parser import parse_boolean_pattern, parse_selector
from repro.xmltree.pattern import CHILD, DESC, Pattern, PatternNode
from repro.xmltree.predicates import ANY, LabelEquals


def reference_matches(pattern: Pattern, root) -> list[dict]:
    """All matches by brute force over every node assignment."""
    pattern_nodes = list(pattern.nodes())
    doc_nodes = list(tree.preorder(root))
    matches = []
    for assignment in itertools.product(doc_nodes, repeat=len(pattern_nodes)):
        mapping = dict(zip((id(n) for n in pattern_nodes), assignment))
        if mapping[id(pattern.root)] is not root:
            continue
        ok = True
        for pnode, dnode in zip(pattern_nodes, assignment):
            if not pnode.predicate.matches(dnode):
                ok = False
                break
            if pnode.parent is not None:
                image_parent = mapping[id(pnode.parent)]
                if pnode.axis == CHILD:
                    if dnode.parent is not image_parent:
                        ok = False
                        break
                else:
                    if not tree.is_proper_ancestor(image_parent, dnode):
                        ok = False
                        break
        if ok:
            matches.append(mapping)
    return matches


@pytest.fixture()
def sample():
    return Document(
        doc(
            "r",
            doc("a", doc("b", "c"), "c"),
            doc("b", doc("a", "c")),
            "c",
        )
    )


def test_has_match_simple(sample):
    assert has_match(parse_boolean_pattern("r/a/b"), sample.root)
    assert has_match(parse_boolean_pattern("r//c"), sample.root)
    assert not has_match(parse_boolean_pattern("r/c/a"), sample.root)


def test_root_must_match(sample):
    assert not has_match(parse_boolean_pattern("a/b"), sample.root)
    # ...but evaluating on the subtree rooted at 'a' anchors there.
    a = sample.root.children[0]
    assert has_match(parse_boolean_pattern("a/b"), a)


def test_descendant_is_proper(sample):
    # r//r requires a proper descendant labeled r: there is none.
    assert not has_match(parse_boolean_pattern("r//r"), sample.root)


def test_match_bits_structure(sample):
    pattern = parse_boolean_pattern("r//b")
    bits = match_bits(pattern, sample.root)
    root_node, b_node = pattern.nodes()
    b_labels = {
        node.label for node in tree.preorder(sample.root) if id(node) in bits[id(b_node)]
    }
    assert b_labels == {"b"}


@pytest.mark.parametrize(
    "text,expected",
    [
        ("r/$a", 1),
        ("r//$a", 2),
        ("r//$c", 4),
        ("r//$*[c]", 3),  # nodes with a c child: a(top), b(top), b(deep)? -> 3
        ("r/$*", 3),
    ],
)
def test_selected_set_counts(sample, text, expected):
    pattern, node = parse_selector(text)
    assert len(selected_set(pattern, node, sample.root)) == expected


def test_selected_set_matches_reference(sample):
    for text in ["r//$a", "r//$*[c]", "r/$*//c", "r//$b/c", "r//$*"]:
        pattern, node = parse_selector(text)
        expected = {
            id(m[id(node)]) for m in reference_matches(pattern, sample.root)
        }
        actual = {id(v) for v in selected_set(pattern, node, sample.root)}
        assert actual == expected, text


def test_enumerate_matches_against_reference(sample):
    for text in ["r/a/b", "r//c", "r//*[c]", "r//a//c", "r/*[b]/c"]:
        pattern = parse_boolean_pattern(text)
        expected = reference_matches(pattern, sample.root)
        actual = list(enumerate_matches(pattern, sample.root))
        expected_keys = {
            tuple(sorted((k, id(v)) for k, v in m.items())) for m in expected
        }
        actual_keys = {
            tuple(sorted((k, id(v)) for k, v in m.items())) for m in actual
        }
        assert actual_keys == expected_keys, text


def test_count_matches(sample):
    assert count_matches(parse_boolean_pattern("r//c"), sample.root) == 4


def test_randomized_against_reference():
    rng = random.Random(5)
    labels = ["a", "b", "c"]

    def random_doc(size):
        nodes = [doc(rng.choice(labels))]
        for _ in range(size - 1):
            parent = rng.choice(nodes)
            child = doc(rng.choice(labels))
            parent.add_child(child)
            nodes.append(child)
        return nodes[0]

    def random_pattern(max_nodes=4):
        root = PatternNode(rng.choice([ANY, LabelEquals(rng.choice(labels))]), CHILD)
        nodes = [root]
        for _ in range(rng.randint(0, max_nodes - 1)):
            parent = rng.choice(nodes)
            child = PatternNode(
                rng.choice([ANY, LabelEquals(rng.choice(labels))]),
                rng.choice([CHILD, DESC]),
            )
            parent.add_child(child)
            nodes.append(child)
        return Pattern(root)

    for _ in range(60):
        root = random_doc(rng.randint(1, 7))
        pattern = random_pattern()
        expected = reference_matches(pattern, root)
        assert has_match(pattern, root) == bool(expected)
        projected = rng.choice(list(pattern.nodes()))
        expected_sel = {id(m[id(projected)]) for m in expected}
        actual_sel = {id(v) for v in selected_set(pattern, projected, root)}
        assert actual_sel == expected_sel


def test_extra_test_hook(sample):
    pattern, node = parse_selector("r//$*")
    # Only accept nodes whose subtree has >= 2 nodes.
    def extra(pnode, dnode):
        return tree.subtree_size(dnode) >= 2

    selected = selected_set(pattern, node, sample.root, extra)
    assert {v.label for v in selected} == {"a", "b"}
