"""Tests for the aggregate extensions (Section 7.2): MIN/MAX rewriting,
RATIO constructors, SUM/AVG distributions and the Subset-Sum reduction."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aggregates.hardness import (
    decide_by_dp,
    decide_by_enumeration,
    reduction,
    solving_subsets,
    subset_sum_pdocument,
)
from repro.aggregates.minmax import rewrite
from repro.aggregates.ratio import at_least_fraction, fraction_with_child, ratio_atom
from repro.aggregates.sumavg import (
    sum_count_distribution,
    sum_formula_probability,
    sum_positive_probability,
    xi_avg_all,
    xi_sum_all,
)
from repro.baseline.naive import naive_probability
from repro.core.evaluator import probability
from repro.core.formulas import (
    CountAtom,
    DocumentEvaluator,
    MaxAtom,
    MinAtom,
    SFormula,
    conjunction,
)
from repro.pdoc.generate import random_instance
from repro.pdoc.pdocument import pdocument
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.workloads.synthetic import numeric_pdocument
from repro.xmltree.parser import parse_selector

from .strategies import DEFAULT_SETTINGS


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


# -- MIN/MAX rewriting ---------------------------------------------------------

ALL_OPS = ("=", "!=", "<", "<=", ">", ">=")


@pytest.mark.parametrize("op", ALL_OPS)
@pytest.mark.parametrize("cls", [MinAtom, MaxAtom])
def test_rewrite_preserves_document_semantics(cls, op):
    rng = random.Random(hash((cls.__name__, op)) % 10**6)
    for _ in range(25):
        pd = random_pdocument(rng, numeric=True)
        document = random_instance(pd, rng)
        atom = cls([sel("$*"), sel("*//$*")], op, Fraction(rng.randint(0, 5)))
        rewritten = rewrite(atom)
        evaluator = DocumentEvaluator()
        assert evaluator.satisfies(document.root, atom) == evaluator.satisfies(
            document.root, rewritten
        ), (cls.__name__, op)


def test_rewrite_is_identity_on_cnt_formulae():
    atom = CountAtom([sel("r/$a")], ">=", 1)
    assert rewrite(atom) is atom
    composite = conjunction([atom, CountAtom([sel("r/$b")], "=", 0)])
    assert rewrite(composite) is composite


def test_rewrite_handles_nested_attachments():
    inner = MaxAtom([sel("*/$*")], ">", 2)
    outer_sel = sel("r/$a").with_alpha(sel("r/$a").projected, inner)
    # NB: with_alpha keys by the projected node of the *same* SFormula:
    base = sel("r/$a")
    outer_sel = base.with_alpha(base.projected, inner)
    atom = CountAtom([outer_sel], ">=", 1)
    rewritten = rewrite(atom)
    assert rewritten is not atom
    from repro.core.formulas import MaxAtom as MA

    def contains_minmax(f, seen=None):
        seen = seen if seen is not None else set()
        if id(f) in seen:
            return False
        seen.add(id(f))
        if isinstance(f, (MinAtom, MA)):
            return True
        parts = getattr(f, "parts", ())
        inner_f = getattr(f, "inner", None)
        disjuncts = getattr(f, "disjuncts", ())
        for part in parts:
            if contains_minmax(part, seen):
                return True
        if inner_f is not None and contains_minmax(inner_f, seen):
            return True
        for sf in disjuncts:
            for value in sf.alpha.values():
                if contains_minmax(value, seen):
                    return True
        return False

    assert not contains_minmax(rewritten)


def test_minmax_probabilities_match_baseline():
    rng = random.Random(55)
    for _ in range(40):
        pd = random_pdocument(rng, numeric=True)
        formula = random_formula(rng, allow_minmax=True)
        assert probability(pd, formula) == naive_probability(pd, formula)


def test_minmax_empty_set_probabilities():
    pd = numeric_pdocument(width=2, value_range=5, prob=Fraction(1, 2), seed=1)
    # MAX < -10 holds exactly when no numeric node is present.
    atom = MaxAtom([sel("$*"), sel("*//$*")], "<", -10)
    assert probability(pd, atom) == Fraction(1, 4)
    atom2 = MinAtom([sel("$*"), sel("*//$*")], ">", 100)
    assert probability(pd, atom2) == Fraction(1, 4)


# -- RATIO constructors -----------------------------------------------------------

def test_ratio_constructors_match_manual():
    pd, root = pdocument("r")
    for _ in range(2):
        from repro.pdoc.pdocument import PNode

        m = PNode("ord", "m")
        root.ind().add_edge(m, Fraction(1))
        m.ind().add_edge("x", Fraction(1, 2))
    pd.validate()
    has_x = CountAtom([sel("*/$x")], ">=", 1)
    atom = at_least_fraction(sel("r/$m"), has_x, Fraction(1, 2))
    assert probability(pd, atom) == Fraction(3, 4)
    manual = ratio_atom([sel("r/$m")], has_x, ">=", Fraction(1, 2))
    assert probability(pd, manual) == Fraction(3, 4)
    child = fraction_with_child(sel("r/$m"), "x", ">=", Fraction(1, 2))
    assert probability(pd, child) == Fraction(3, 4)


# -- SUM/AVG ----------------------------------------------------------------------

def test_sum_count_distribution_basic():
    pd, root = pdocument("values")
    ind = root.ind()
    ind.add_edge(2, Fraction(1, 2))
    ind.add_edge(3, Fraction(1, 2))
    pd.validate()
    dist = sum_count_distribution(pd)
    assert sum(dist.values()) == 1
    # (sum, count) includes the root node (count) with label contributing 0.
    assert dist[(Fraction(0), 1)] == Fraction(1, 4)
    assert dist[(Fraction(2), 2)] == Fraction(1, 4)
    assert dist[(Fraction(3), 2)] == Fraction(1, 4)
    assert dist[(Fraction(5), 3)] == Fraction(1, 4)


def test_sum_formula_probability_matches_baseline():
    rng = random.Random(66)
    for _ in range(15):
        pd = random_pdocument(rng, numeric=True, max_nodes=7)
        target = Fraction(rng.randint(0, 8))
        sum_atom = xi_sum_all(target)
        assert sum_formula_probability(pd, sum_atom) == naive_probability(pd, sum_atom)
        avg_atom = xi_avg_all(target)
        assert sum_formula_probability(pd, avg_atom) == naive_probability(pd, avg_atom)


def test_sum_formula_rejects_general_selectors():
    pd = subset_sum_pdocument([1, 2])
    from repro.core.formulas import SumAtom

    narrow = SumAtom([sel("items/$*")], "=", 3)
    with pytest.raises(ValueError):
        sum_formula_probability(pd, narrow)


# -- the Subset-Sum reduction (Proposition 7.2) --------------------------------------

def test_reduction_positive_iff_solvable():
    cases = [
        ([3, 5, 7], 12, True),
        ([3, 5, 7], 11, False),
        ([1], 1, True),
        ([2], 1, False),
        ([4, 4], 8, True),
        ([2, 3, 9], 14, True),
        ([2, 3, 9], 8, False),
    ]
    for items, target, solvable in cases:
        pdoc, formula = reduction(items, target)
        assert (naive_probability(pdoc, formula) > 0) == solvable
        assert decide_by_enumeration(items, target) == solvable
        assert decide_by_dp(items, target) == solvable
        assert sum_positive_probability(pdoc, target) == solvable


def test_reduction_probability_counts_subsets():
    items = [1, 2, 3]
    target = 3
    pdoc, formula = reduction(items, target)
    expected = Fraction(len(solving_subsets(items, target)), 2 ** len(items))
    assert naive_probability(pdoc, formula) == expected
    assert sum_formula_probability(pdoc, formula) == expected


def test_empty_instance_rejected():
    with pytest.raises(ValueError):
        subset_sum_pdocument([])


def test_dp_and_enumeration_agree_randomized():
    rng = random.Random(88)
    for _ in range(30):
        items = [rng.randint(1, 12) for _ in range(rng.randint(1, 8))]
        target = rng.randint(0, sum(items) + 2)
        assert decide_by_dp(items, target) == decide_by_enumeration(items, target)


@given(
    items=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10),
    offset=st.integers(min_value=-2, max_value=2),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
@DEFAULT_SETTINGS
def test_dp_and_enumeration_agree_property(items, offset, fraction):
    # Targets concentrate around achievable subset sums (fraction of the
    # total ± a small offset) so the property exercises both outcomes
    # rather than trivially-unsolvable targets.
    target = int(fraction * sum(items)) + offset
    assert decide_by_dp(items, target) == decide_by_enumeration(items, target)


# -- nested MIN/MAX rewriting --------------------------------------------------


def _contains_minmax(f, seen=None):
    seen = seen if seen is not None else set()
    if id(f) in seen:
        return False
    seen.add(id(f))
    if isinstance(f, (MinAtom, MaxAtom)):
        return True
    for part in getattr(f, "parts", ()):
        if _contains_minmax(part, seen):
            return True
    inner = getattr(f, "inner", None)
    if inner is not None and _contains_minmax(inner, seen):
        return True
    for sf in getattr(f, "disjuncts", ()):
        for value in sf.alpha.values():
            if _contains_minmax(value, seen):
                return True
    return False


def _nested_extremum_atom(outer_cls, inner_cls, outer_op, inner_op):
    """An extremum atom whose selector attaches another extremum atom:
    e.g. MIN over nodes whose subtree has MAX(*/$*) > 2."""
    inner = inner_cls([sel("*/$*")], inner_op, Fraction(2))
    base = sel("*//$*")
    guarded = base.with_alpha(base.projected, inner)
    return outer_cls([guarded], outer_op, Fraction(3))


@pytest.mark.parametrize("outer_cls", [MinAtom, MaxAtom])
@pytest.mark.parametrize("inner_cls", [MinAtom, MaxAtom])
def test_rewrite_nested_extrema_semantics(outer_cls, inner_cls):
    rng = random.Random(hash((outer_cls.__name__, inner_cls.__name__)) % 10**6)
    atom = _nested_extremum_atom(outer_cls, inner_cls, "<=", ">")
    rewritten = rewrite(atom)
    assert not _contains_minmax(rewritten)
    for _ in range(40):
        pd = random_pdocument(rng, numeric=True)
        document = random_instance(pd, rng)
        evaluator = DocumentEvaluator()
        assert evaluator.satisfies(document.root, atom) == evaluator.satisfies(
            document.root, rewritten
        ), (outer_cls.__name__, inner_cls.__name__)


def test_rewrite_nested_extrema_probabilities_match_baseline():
    # Three levels: CNT over a selector guarded by MAX, itself guarded by
    # MIN.  The rewrite must recurse through every alpha attachment.
    innermost = MinAtom([sel("*/$*")], ">=", Fraction(1))
    mid_base = sel("*/$*")
    mid = MaxAtom([mid_base.with_alpha(mid_base.projected, innermost)], ">", Fraction(2))
    outer_base = sel("*//$*")
    atom = CountAtom([outer_base.with_alpha(outer_base.projected, mid)], ">=", 1)
    rewritten = rewrite(atom)
    assert not _contains_minmax(rewritten)
    rng = random.Random(1234)
    for _ in range(10):
        pd = random_pdocument(rng, numeric=True)
        assert probability(pd, rewritten) == naive_probability(pd, atom)


def test_rewrite_nested_is_idempotent():
    atom = _nested_extremum_atom(MaxAtom, MinAtom, ">", "<=")
    once = rewrite(atom)
    assert rewrite(once) is once
