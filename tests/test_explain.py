"""Tests for constraint-violation explanation."""

from __future__ import annotations

from fractions import Fraction

from repro.core.constraints import Constraint, always
from repro.core.explain import explain_violations, why_inconsistent
from repro.core.formulas import SFormula
from repro.pdoc.pdocument import pdocument
from repro.xmltree.document import Document, doc
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def test_no_violations_on_figure2(figure2, constraints_c1_c4):
    assert explain_violations(figure2, constraints_c1_c4) == []


def test_violation_located_and_described():
    d = Document(
        doc(
            "library",
            doc("shelf", doc("book", "x"), doc("book", "y")),
            doc("shelf"),
        )
    )
    c = always(sel("library/$shelf"), sel("*/$book"), ">=", 1, name="nonempty")
    violations = explain_violations(d, [c])
    assert len(violations) == 1
    violation = violations[0]
    assert violation.scope_node.label == "shelf"
    assert violation.consequent_count == 0
    assert "nonempty violated" in violation.describe()
    assert "CNT(S2) = 0" in violation.describe()


def test_violations_per_constraint():
    d = Document(doc("library", doc("shelf"), doc("shelf")))
    c1 = always(sel("library/$shelf"), sel("*/$book"), ">=", 1, name="books")
    c2 = always(sel("$library"), sel("*/$shelf"), "<=", 1, name="one-shelf")
    violations = explain_violations(d, [c1, c2])
    names = sorted(v.constraint.name for v in violations)
    assert names == ["books", "books", "one-shelf"]


def test_conditional_constraint_vacuous_antecedent():
    d = Document(doc("library", doc("shelf", doc("book", "x"))))
    c = Constraint(
        sel("library/$shelf"), sel("*/$book"), ">=", 5, sel("*/$lamp"), ">=", 1
    )
    assert explain_violations(d, [c]) == []


def test_why_inconsistent_on_consistent_pdoc():
    pd, root = pdocument("library")
    shelf = root.ordinary("shelf")
    shelf.ind().add_edge("book", Fraction(1, 2))
    pd.validate()
    c = always(sel("library/$shelf"), sel("*/$book"), "<=", 5)
    assert "consistent" in why_inconsistent(pd, [c])


def test_why_inconsistent_reports_cause():
    pd, root = pdocument("library")
    shelf = root.ordinary("shelf")
    shelf.ind().add_edge("book", Fraction(1, 2))
    pd.validate()
    c = always(sel("library/$shelf"), sel("*/$book"), ">=", 3, name="well-stocked")
    text = why_inconsistent(pd, [c])
    assert "no satisfying world" in text
    assert "well-stocked" in text
