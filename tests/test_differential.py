"""Repo-wide differential harness for the numeric backends (docs/NUMERIC.md).

Every surface that accepts ``backend=`` is exercised against the exact
``Fraction`` arithmetic on shared randomized inputs (:mod:`tests.strategies`):

* ``float64`` agrees with exact to 1e-9 relative error;
* ``interval`` *encloses* the exact value (the enclosure is the proof);
* ``auto`` never makes a decision — positivity, sampler branch, answer
  rank, top-k order — that differs from exact, and returns the exact
  ``Fraction`` wherever it fell back;
* the polynomial evaluator itself is cross-checked once more against the
  exponential possible-worlds baseline on the jittered ("re-estimated")
  parameter regime the fast path exists for;
* float64 underflow (weights below ~1e-308) must never be mistaken for
  impossibility: the interval upper bound stays positive, ``auto`` falls
  back to exact, and the guarded service refuses to divide by an
  underflowed denominator.
"""

from __future__ import annotations

import random
from fractions import Fraction

from hypothesis import given

from repro.baseline.naive import naive_probability
from repro.circuit import compile_formulas
from repro.core.evaluator import probabilities, probability
from repro.core.formulas import CountAtom, TRUE
from repro.core.pxdb import PXDB
from repro.core.query import selector
from repro.core.sampler import sample
from repro.core.topk import top_k_worlds
from repro.numeric import GUARD, Interval, maybe_positive
from repro.pdoc.pdocument import pdocument
from repro.service.server import query_payload
from repro.service.store import DocumentStore
from repro.workloads.university import (
    figure1_constraints,
    figure1_pdocument,
    scaled_university,
)

from .strategies import DEFAULT_SETTINGS, pdoc_formula_pairs, reestimate, rngs

REL_TOL = 1e-9


def _close(approx: float, exact: Fraction) -> bool:
    reference = float(exact)
    return abs(approx - reference) <= REL_TOL * (abs(reference) + 1e-12)


def _contains(iv: Interval, exact: Fraction) -> bool:
    return iv.lo <= exact <= iv.hi


# -- float64 vs exact ---------------------------------------------------------

@given(case=pdoc_formula_pairs(formulas=3, allow_exp=True))
@DEFAULT_SETTINGS
def test_float64_matches_exact_within_tolerance(case):
    pdoc, formulas = case
    exact = probabilities(pdoc, formulas)
    approx = probabilities(pdoc, formulas, backend="float64")
    assert all(_close(a, e) for a, e in zip(approx, exact))


# -- interval encloses exact --------------------------------------------------

@given(case=pdoc_formula_pairs(formulas=3, allow_exp=True))
@DEFAULT_SETTINGS
def test_interval_contains_exact(case):
    pdoc, formulas = case
    exact = probabilities(pdoc, formulas)
    enclosures = probabilities(pdoc, formulas, backend="interval")
    assert all(_contains(iv, e) for iv, e in zip(enclosures, exact))


@given(rng=rngs())
@DEFAULT_SETTINGS
def test_interval_contains_exact_on_reestimated_parameters(rng):
    """The regime the fast path targets: 6-digit rational probabilities."""
    from repro.workloads.random_gen import random_formula, random_pdocument

    pdoc = reestimate(random_pdocument(rng, allow_exp=True), rng)
    formula = random_formula(rng)
    exact = probability(pdoc, formula)
    assert _contains(probability(pdoc, formula, backend="interval"), exact)
    assert _close(probability(pdoc, formula, backend="float64"), exact)


# -- auto decisions are exact's decisions -------------------------------------

@given(case=pdoc_formula_pairs(formulas=3, allow_exp=True))
@DEFAULT_SETTINGS
def test_auto_positivity_decisions_match_exact(case):
    pdoc, formulas = case
    exact = probabilities(pdoc, formulas)
    guarded = probabilities(pdoc, formulas, backend="auto")
    for value, reference in zip(guarded, exact):
        assert (value > 0) == (reference > 0)
        # Wherever auto fell back, it returned the exact value itself.
        if isinstance(value, Fraction):
            assert value == reference


# -- circuits -----------------------------------------------------------------

@given(case=pdoc_formula_pairs(formulas=2, allow_exp=True))
@DEFAULT_SETTINGS
def test_circuit_backends_match_exact(case):
    pdoc, formulas = case
    circuit = compile_formulas(pdoc, formulas)
    exact = circuit.forward()
    approx = circuit.forward(backend="float64")
    enclosures = circuit.forward(backend="interval")
    guarded = circuit.forward(backend="auto")
    for e, a, iv, g in zip(exact, approx, enclosures, guarded):
        assert _close(a, e)
        assert _contains(iv, e)
        assert (g > 0) == (e > 0)
        if isinstance(g, Fraction):
            assert g == e


# -- baseline cross-check on the re-estimated regime --------------------------

@given(rng=rngs())
@DEFAULT_SETTINGS
def test_evaluator_matches_baseline_on_reestimated_parameters(rng):
    from repro.workloads.random_gen import random_formula, random_pdocument

    pdoc = reestimate(random_pdocument(rng, max_nodes=7), rng)
    formula = random_formula(rng)
    reference = naive_probability(pdoc, formula)
    assert probability(pdoc, formula) == reference
    assert _close(probability(pdoc, formula, backend="float64"), reference)


# -- sampler: pinned-seed branch identity (tier-1 smoke) ----------------------

def _draw_uid_sets(pdoc, condition, backend, seed, draws=3):
    rng = random.Random(seed)
    worlds = []
    for _ in range(draws):
        document = sample(pdoc, condition, rng, backend=backend)
        worlds.append(frozenset(_uids(document.root)))
    # The random stream must be in the same state afterwards, or later
    # draws would diverge even with identical branch decisions so far.
    return worlds, rng.getrandbits(64)


def _uids(node):
    yield node.uid
    for child in node.children:
        yield from _uids(child)


def test_sampler_auto_branches_identical_to_exact_pinned_seeds():
    from repro.core.constraints import constraints_formula

    cases = [
        (figure1_pdocument(), constraints_formula(figure1_constraints())),
        (scaled_university(2, 2, 1), constraints_formula(figure1_constraints())),
    ]
    for pdoc, condition in cases:
        for seed in range(8):
            exact = _draw_uid_sets(pdoc, condition, None, seed)
            guarded = _draw_uid_sets(pdoc, condition, "auto", seed)
            assert exact == guarded


# -- top-k order --------------------------------------------------------------

def test_topk_order_identical_auto_vs_exact():
    from repro.core.constraints import constraints_formula

    pdoc = figure1_pdocument()
    condition = constraints_formula(figure1_constraints())
    exact = top_k_worlds(pdoc, 5, condition)
    guarded = top_k_worlds(pdoc, 5, condition, backend="auto")
    assert [sorted(_uids(d.root)) for d, _ in exact] == [
        sorted(_uids(d.root)) for d, _ in guarded
    ]
    for (_, p_exact), (_, p_auto) in zip(exact, guarded):
        assert _close(float(p_auto), p_exact)


# -- service-level guarded ranking --------------------------------------------

def test_service_query_auto_matches_exact_answers_and_order():
    store = DocumentStore()
    store.add("fig1", PXDB(figure1_pdocument(), figure1_constraints()))
    entry = store.get("fig1")
    exact = query_payload(entry, "/university//$name")
    # The second call hits the entry's cached candidate tuples, so the
    # guarded ranking is exercised on the circuit route as well.
    guarded = query_payload(entry, "/university//$name", backend="auto")
    assert [row["answer"] for row in exact["answers"]] == [
        row["answer"] for row in guarded["answers"]
    ]
    for e_row, g_row in zip(exact["answers"], guarded["answers"]):
        assert abs(
            e_row["probability_float"] - g_row["probability_float"]
        ) <= REL_TOL * (abs(e_row["probability_float"]) + 1e-12)


# -- underflow is not impossibility -------------------------------------------

def _needle_pdocument(edges: int, prob=Fraction(1, 10**16)):
    """``edges`` independent leaves, each present with a tiny probability:
    the all-present world has probability prob**edges — far below the
    float64 normal range once ``edges`` is large enough."""
    pd, root = pdocument("root")
    holder = root.ind()
    for index in range(edges):
        holder.add_edge(f"leaf{index}", prob)
    pd.validate()
    return pd


def _all_leaves_formula(edges: int):
    return CountAtom([selector("root/$*")], ">=", edges)


def test_subnormal_probability_near_1e320_survives_every_backend():
    # 20 edges of 1e-16: the exact probability is 1e-320 — a *subnormal*
    # float64, representable but one rounding away from vanishing.
    pdoc = _needle_pdocument(20)
    formula = _all_leaves_formula(20)
    exact = probability(pdoc, formula)
    assert exact == Fraction(1, 10**320)
    approx = probability(pdoc, formula, backend="float64")
    assert approx > 0.0  # subnormal, not flushed
    enclosure = probability(pdoc, formula, backend="interval")
    assert maybe_positive(enclosure)
    assert _contains(enclosure, exact)


def test_float64_underflow_to_zero_is_not_pruned_as_impossible():
    # 21 edges of 1e-16: exact 1e-336 rounds to 0.0 in float64.  The
    # evaluator's zero short-circuit tests exact provenance, so the event
    # must stay alive in the interval backend and auto must recover the
    # exact value via fallback.
    pdoc = _needle_pdocument(21)
    formula = _all_leaves_formula(21)
    exact = probability(pdoc, formula)
    assert exact == Fraction(1, 10**336) > 0
    assert probability(pdoc, formula, backend="float64") == 0.0  # underflow
    enclosure = probability(pdoc, formula, backend="interval")
    assert maybe_positive(enclosure), "underflow must not look impossible"
    fallbacks_before = GUARD.snapshot()["fallbacks"]
    guarded = probability(pdoc, formula, backend="auto")
    assert guarded == exact  # straddling sign → exact fallback
    assert GUARD.snapshot()["fallbacks"] > fallbacks_before


def test_float64_underflowed_denominator_refuses_to_divide():
    pdoc = _needle_pdocument(21)
    db = PXDB(pdoc, [_all_leaves_formula(21)])
    try:
        db.event_probabilities([TRUE], backend="float64")
    except ValueError as error:
        assert "underflow" in str(error)
    else:
        raise AssertionError("expected the underflow ValueError")
    # auto survives the same request: the guard falls back to exact.
    (value,) = db.event_probabilities([TRUE], backend="auto")
    assert value == 1
