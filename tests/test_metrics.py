"""Unit tests for the metrics sink: quantile edge cases and the
Prometheus text exposition."""

from __future__ import annotations

import pytest

from repro.service.metrics import LatencyHistogram, Metrics


# -- quantile edge cases ------------------------------------------------------

def test_quantile_of_empty_histogram_is_zero():
    histogram = LatencyHistogram()
    for q in (0.0, 0.5, 0.99, 1.0):
        assert histogram.quantile(q) == 0.0
    summary = histogram.summary()
    assert summary["count"] == 0
    assert summary["mean_ms"] == 0.0
    assert summary["p99_ms"] == 0.0


def test_quantile_single_observation_interpolates_within_bucket():
    histogram = LatencyHistogram()
    histogram.observe(0.003)  # lands in the (0.0025, 0.005] bucket
    # Interpolated quantiles travel through the bucket instead of pinning
    # to its upper bound (the old behavior read every quantile as 5 ms).
    assert histogram.quantile(0.5) == pytest.approx(0.00375)
    assert histogram.quantile(1.0) == pytest.approx(0.005)
    assert 0.0025 < histogram.quantile(0.01) < 0.005


def test_quantile_monotone_in_q():
    histogram = LatencyHistogram()
    for value in (0.0001, 0.003, 0.003, 0.04, 1.7):
        histogram.observe(value)
    quantiles = [histogram.quantile(q / 20) for q in range(21)]
    assert quantiles == sorted(quantiles)


def test_quantile_overflow_bucket_clamps_to_highest_bound():
    histogram = LatencyHistogram(buckets=(0.1,))
    histogram.observe(5.0)
    # Observations beyond the last finite bucket have no upper bound to
    # interpolate toward; report the highest finite bound, not infinity.
    assert histogram.quantile(0.5) == 0.1


def test_quantile_without_buckets_is_infinite():
    histogram = LatencyHistogram(buckets=())
    histogram.observe(5.0)
    assert histogram.quantile(0.5) == float("inf")


def test_quantile_two_buckets_split():
    histogram = LatencyHistogram(buckets=(0.001, 1.0))
    for _ in range(9):
        histogram.observe(0.0001)
    histogram.observe(0.5)
    # q=0.5 -> 5th of 9 observations in (0, 0.001]: 0.001 * 5/9.
    assert histogram.quantile(0.5) == pytest.approx(0.001 * 5 / 9)
    # q=0.99 -> rank 9.9 of 10, 0.9 into the (0.001, 1.0] bucket.
    assert histogram.quantile(0.99) == pytest.approx(0.001 + 0.999 * 0.9)


def test_quantile_skips_empty_buckets():
    histogram = LatencyHistogram(buckets=(0.001, 0.01, 0.1, 1.0))
    histogram.observe(0.5)  # only the (0.1, 1.0] bucket is occupied
    assert 0.1 < histogram.quantile(0.01) <= 1.0
    assert histogram.quantile(1.0) == pytest.approx(1.0)


# -- Prometheus text exposition -----------------------------------------------

@pytest.fixture()
def populated_metrics() -> Metrics:
    metrics = Metrics()
    metrics.increment("query.cache_hits", 3)
    metrics.increment("sat.requests")
    metrics.observe("query", 0.0001)
    metrics.observe("query", 0.0001)
    metrics.observe("query", 2.0)
    return metrics


def test_prometheus_counters_sanitized(populated_metrics):
    text = populated_metrics.render_prometheus()
    assert "pxdb_query_cache_hits_total 3" in text
    assert "pxdb_sat_requests_total 1" in text
    assert "# TYPE pxdb_query_cache_hits_total counter" in text
    assert "pxdb_uptime_seconds" in text


def test_prometheus_histogram_buckets_are_cumulative(populated_metrics):
    lines = populated_metrics.render_prometheus().splitlines()
    buckets = [
        line for line in lines
        if line.startswith('pxdb_request_duration_seconds_bucket{op="query"')
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)  # cumulative by construction
    assert counts[-1] == 3  # +Inf bucket holds the total count
    assert buckets[-1].endswith('le="+Inf"} 3')
    assert 'pxdb_request_duration_seconds_count{op="query"} 3' in lines
    total = next(
        line for line in lines
        if line.startswith('pxdb_request_duration_seconds_sum{op="query"}')
    )
    assert float(total.rsplit(" ", 1)[1]) == pytest.approx(2.0002)


def test_prometheus_empty_metrics_render():
    text = Metrics().render_prometheus()
    assert "pxdb_uptime_seconds" in text
    assert "pxdb_request_duration_seconds" not in text
    assert text.endswith("\n")


def test_prometheus_extra_gauges_with_labels():
    text = Metrics().render_prometheus(
        [
            ("pxdb_store_loads", {}, 4),
            ("pxdb_circuit_rebinds_total", {"db": 'uni"1'}, 2),
        ]
    )
    assert "pxdb_store_loads 4" in text
    assert 'pxdb_circuit_rebinds_total{db="uni\\"1"} 2' in text
    assert "# TYPE pxdb_store_loads gauge" in text
