"""Tests for the PXDB statistics module (expected counts, distributions)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.naive import conditional_world_distribution
from repro.core.formulas import CountAtom, DocumentEvaluator, SFormula, TRUE
from repro.core.statistics import (
    count_distribution,
    count_variance,
    expected_count,
    expected_sum,
    membership_probabilities,
)
from repro.pdoc.pdocument import pdocument
from repro.workloads.random_gen import random_pdocument, random_selector
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def build_pdoc():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("a", Fraction(1, 4))
    ind.add_edge(6, Fraction(1, 3))
    pd.validate()
    return pd


def test_membership_probabilities():
    pd = build_pdoc()
    table = membership_probabilities(sel("r/$a"), pd)
    assert sorted(table.values()) == [Fraction(1, 4), Fraction(1, 2)]


def test_expected_count_linearity():
    pd = build_pdoc()
    assert expected_count(sel("r/$a"), pd) == Fraction(3, 4)
    assert expected_count(sel("r/$*"), pd) == Fraction(3, 4) + Fraction(1, 3)


def test_expected_count_conditional():
    pd = build_pdoc()
    condition = CountAtom([sel("r/$a")], ">=", 1)
    value = expected_count(sel("r/$a"), pd, condition)
    # by hand: E[count | count >= 1] = Pr(1)*1 + Pr(2)*2 over Pr(>=1)
    p2 = Fraction(1, 2) * Fraction(1, 4)
    p1 = Fraction(1, 2) * Fraction(3, 4) + Fraction(1, 2) * Fraction(1, 4)
    assert value == (p1 + 2 * p2) / (p1 + p2)


def test_count_distribution_matches_enumeration():
    rng = random.Random(9)
    for _ in range(10):
        pd = random_pdocument(rng, max_nodes=7)
        sformula = random_selector(rng)
        dist = count_distribution(sformula, pd)
        assert sum(dist.values()) == 1
        reference: dict[int, Fraction] = {}
        for uids, p in conditional_world_distribution(pd, TRUE).items():
            document = pd.document_from_uids(uids)
            count = len(DocumentEvaluator().select(document.root, sformula))
            reference[count] = reference.get(count, Fraction(0)) + p
        assert dist == reference


def test_count_variance_against_distribution():
    pd = build_pdoc()
    sformula = sel("r/$a")
    dist = count_distribution(sformula, pd)
    mean = sum(Fraction(k) * p for k, p in dist.items())
    variance = sum((Fraction(k) - mean) ** 2 * p for k, p in dist.items())
    assert count_variance(sformula, pd) == variance


def test_expected_sum_is_polynomial_in_spirit():
    pd = build_pdoc()
    assert expected_sum(sel("r/$*"), pd) == 6 * Fraction(1, 3)
    # the a-leaves are non-numeric, so only the 6 contributes


def test_expected_sum_on_subset_sum_gadget():
    """Even on the Prop 7.2 gadget, E[SUM] is trivially (sum of items)/2."""
    from repro.aggregates.hardness import subset_sum_pdocument

    items = [3, 5, 7, 11, 13]
    pd = subset_sum_pdocument(items)
    assert expected_sum(sel("items/$*"), pd) == Fraction(sum(items), 2)


def test_inconsistent_condition_raises():
    pd = build_pdoc()
    impossible = CountAtom([sel("r/$zzz")], ">=", 1)
    with pytest.raises(ValueError):
        expected_count(sel("r/$a"), pd, impossible)
    with pytest.raises(ValueError):
        count_distribution(sel("r/$a"), pd, impossible)
