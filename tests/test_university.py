"""End-to-end tests on the paper's running example: Figures 1-2 and every
worked example in the text (2.1, 2.3, 3.1, 3.2, 3.3, 3.4)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.naive import conditional_world_distribution, naive_probability
from repro.core.constraints import constraints_formula, satisfies_all
from repro.core.evaluator import probability
from repro.core.formulas import exists, select
from repro.core.pxdb import PXDB
from repro.pdoc.enumerate import node_probability, world_probability
from repro.workloads.university import (
    figure1_constraints,
    s_chr,
    s_dep,
    s_mem,
    s_st,
    scaled_university,
)
from repro.xmltree.document import canonical_key
from repro.xmltree.pattern import Pattern, PatternNode
from repro.xmltree.predicates import ANY, NodeIs


@pytest.fixture(scope="module")
def pxdb(figure1):
    return PXDB(figure1.pdoc, figure1_constraints())


def node_event(uid: int):
    """The c-formula 'the node with this uid appears in the document'."""
    root = PatternNode(ANY)
    root.descendant(NodeIs(uid))
    return exists(Pattern(root))


# -- Example 2.1: the selectors on Figure 2's instance --------------------------

def test_example_2_1_s_dep(figure2):
    assert [v.label for v in select(figure2.root, s_dep())] == ["department"]


def test_example_2_1_s_chr(figure2):
    selected = select(figure2.root, s_chr())
    names = {v.children[0].children[0].label for v in selected}
    assert names == {"Mary"}


def test_example_2_1_s_mem_selects_all_members(figure2):
    selected = select(figure2.root, s_mem())
    assert len(selected) == 3
    assert {v.label for v in selected} == {"member"}


def test_example_2_1_s_st(figure2):
    selected = select(figure2.root, s_st())
    students = {v.children[0].label for v in selected}
    assert students == {"David", "Nicole"}


# -- Example 2.3: Figure 2 satisfies C1..C4 ---------------------------------------

def test_example_2_3_figure2_satisfies_constraints(figure2, constraints_c1_c4):
    assert satisfies_all(figure2, constraints_c1_c4)


# -- Example 3.1: Mary's probabilities ---------------------------------------------

def test_example_3_1_mary_chair_and_rank(figure1):
    assert node_probability(figure1.pdoc, figure1.mary_chair.uid) == Fraction(7, 10)
    assert node_probability(figure1.pdoc, figure1.mary_full.uid) == Fraction(3, 5)
    assert node_probability(figure1.pdoc, figure1.mary_assistant.uid) == Fraction(2, 5)
    # "she must be either a full or an assistant professor": the mux sums to 1
    full_or_assistant = probability(
        figure1.pdoc,
        node_event(figure1.mary_full.uid) | node_event(figure1.mary_assistant.uid),
    )
    assert full_or_assistant == 1


# -- Example 3.2: Pr(Amy) = 0.54 -----------------------------------------------------

def test_example_3_2_amy_unconditioned(figure1):
    assert node_probability(figure1.pdoc, figure1.amy.uid) == Fraction(27, 50)
    assert probability(figure1.pdoc, node_event(figure1.amy.uid)) == Fraction(27, 50)


# -- Example 3.3 / 3.4: the PXDB and the conditioned Amy probability -------------------

def test_pxdb_is_well_defined(pxdb):
    assert pxdb.is_well_defined()
    assert 0 < pxdb.constraint_probability() < 1


def test_constraint_probability_matches_naive(figure1, constraints_c1_c4):
    formula = constraints_formula(constraints_c1_c4)
    assert probability(figure1.pdoc, formula) == naive_probability(
        figure1.pdoc, formula
    )


def test_example_3_4_amy_conditioned(figure1, pxdb):
    """Under the constraints, Amy's probability shifts away from 0.54 —
    the probabilistic dependencies of Example 3.4 at work — and the exact
    value matches the enumerated conditional distribution."""
    conditional = pxdb.event_probability(node_event(figure1.amy.uid))
    assert conditional != Fraction(27, 50)
    exact = conditional_world_distribution(figure1.pdoc, pxdb.condition)
    expected = sum(p for uids, p in exact.items() if figure1.amy.uid in uids)
    assert conditional == expected


def test_example_3_4_dependency_chain(figure1, pxdb):
    """Conditioned on Mary being a chair, Lisa cannot be one (C1)."""
    mary_chair = node_event(figure1.mary_chair.uid)
    lisa_chair = node_event(figure1.lisa_chair.uid)
    both = pxdb.event_probability(mary_chair & lisa_chair)
    assert both == 0
    # ... while unconditioned they are independent and can co-occur.
    assert probability(figure1.pdoc, mary_chair & lisa_chair) > 0


def test_chair_must_be_full_professor(figure1, pxdb):
    """C3 in action: Pr(Mary chair AND Mary assistant | C) = 0."""
    event = node_event(figure1.mary_chair.uid) & node_event(
        figure1.mary_assistant.uid
    )
    assert pxdb.event_probability(event) == 0


# -- Figure 2 as a world of Figure 1 ----------------------------------------------------

def test_figure2_is_a_world(figure1, figure2):
    uids = figure1.figure2_uids()
    world = figure1.pdoc.document_from_uids(uids)
    assert canonical_key(world.root) == canonical_key(figure2.root)


def test_figure2_probabilities(figure1, pxdb):
    uids = figure1.figure2_uids()
    prior = world_probability(figure1.pdoc, uids)
    assert prior > 0
    world = figure1.pdoc.document_from_uids(uids)
    conditional = pxdb.document_probability(world)
    assert conditional == prior / pxdb.constraint_probability()
    assert conditional > prior


# -- queries over the PXDB ----------------------------------------------------------------

def test_query_students_over_pxdb(pxdb):
    table = pxdb.query_labels("*//'ph.d. st.'/name/$*")
    assert set(table) >= {("David",), ("Nicole",), ("Amy",)}
    assert all(0 < p <= 1 for p in table.values())


def test_query_matches_naive_conditional(figure1, pxdb):
    """Per-tuple query probabilities agree with the enumerated PXDB."""
    from repro.core.query import Query

    query = Query.parse("*//'ph.d. st.'/name/$*")
    table = pxdb.query(query)
    exact = conditional_world_distribution(figure1.pdoc, pxdb.condition)
    reference: dict[tuple[int, ...], Fraction] = {}
    for uids, p in exact.items():
        document = figure1.pdoc.document_from_uids(uids)
        for answer in query.answers(document):
            key = tuple(node.uid for node in answer)
            reference[key] = reference.get(key, Fraction(0)) + p
    assert table == reference


# -- sampling the PXDB --------------------------------------------------------------------

def test_sampling_figure1(pxdb, constraints_c1_c4):
    rng = random.Random(99)
    for _ in range(5):
        document = pxdb.sample(rng)
        assert satisfies_all(document, constraints_c1_c4)


# -- the scaled workload ------------------------------------------------------------------

def test_scaled_university_shape():
    pd = scaled_university(departments=3, members=2, students=1)
    skeleton = pd.skeleton()
    departments = [c for c in skeleton.root.children if c.label == "department"]
    assert len(departments) == 3
    pd.validate()


def test_scaled_university_consistent_with_constraints():
    pd = scaled_university(departments=2, members=2, students=1)
    formula = constraints_formula(figure1_constraints())
    assert probability(pd, formula) > 0
