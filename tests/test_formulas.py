"""Tests for c-formulae over documents (Definitions 5.1/5.2) and the
closure operations of Section 5.1."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.formulas import (
    FALSE,
    TRUE,
    AvgAtom,
    CAnd,
    CountAtom,
    DocumentEvaluator,
    MaxAtom,
    MinAtom,
    RatioAtom,
    SFormula,
    SumAtom,
    conjunction,
    disjunction,
    exists,
    implies,
    negation,
    not_exists,
    satisfies,
    select,
)
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.pdoc.generate import random_instance
from repro.xmltree.document import Document, doc
from repro.xmltree.parser import parse_boolean_pattern, parse_selector
from repro.xmltree.predicates import NumericCompare


@pytest.fixture()
def sample():
    return Document(
        doc(
            "r",
            doc("a", 3, "x"),
            doc("a", 5),
            doc("b", doc("a", 7)),
        )
    )


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def test_true_false(sample):
    assert satisfies(sample.root, TRUE)
    assert not satisfies(sample.root, FALSE)


def test_count_atom(sample):
    assert satisfies(sample.root, CountAtom([sel("r/$a")], "=", 2))
    assert satisfies(sample.root, CountAtom([sel("r//$a")], "=", 3))
    assert not satisfies(sample.root, CountAtom([sel("r//$a")], ">", 3))


def test_count_union_semantics(sample):
    # r/$a and r//$a overlap on the two top-level a's: union has 3 nodes.
    atom = CountAtom([sel("r/$a"), sel("r//$a")], "=", 3)
    assert satisfies(sample.root, atom)


def test_conjunction_semantics(sample):
    both = conjunction(
        [CountAtom([sel("r/$a")], ">=", 1), CountAtom([sel("r/$b")], ">=", 1)]
    )
    assert satisfies(sample.root, both)
    assert not satisfies(
        sample.root,
        conjunction([CountAtom([sel("r/$b")], ">=", 2), TRUE]),
    )


def test_conjunction_flattening_and_folding():
    atom = CountAtom([sel("$r")], ">=", 1)
    assert conjunction([]) is TRUE
    assert conjunction([TRUE, atom]) is atom
    assert conjunction([FALSE, atom]) is FALSE
    nested = conjunction([CAnd([atom, atom]), atom])
    assert isinstance(nested, CAnd) and len(nested.parts) == 3


def test_negation_involution(sample):
    atom = CountAtom([sel("r/$a")], "=", 2)
    assert satisfies(sample.root, atom)
    assert not satisfies(sample.root, negation(atom))
    assert satisfies(sample.root, negation(negation(atom)))
    assert negation(TRUE) is FALSE and negation(FALSE) is TRUE


def test_disjunction(sample):
    f = disjunction(
        [CountAtom([sel("r/$b")], ">=", 5), CountAtom([sel("r/$a")], ">=", 1)]
    )
    assert satisfies(sample.root, f)
    g = disjunction(
        [CountAtom([sel("r/$b")], ">=", 5), CountAtom([sel("r/$a")], ">=", 5)]
    )
    assert not satisfies(sample.root, g)
    assert disjunction([]) is FALSE
    assert disjunction([TRUE, g]) is TRUE


def test_implies(sample):
    f = implies(CountAtom([sel("r/$a")], ">=", 1), CountAtom([sel("r/$b")], ">=", 1))
    assert satisfies(sample.root, f)
    g = implies(CountAtom([sel("r/$a")], ">=", 1), CountAtom([sel("r/$b")], ">=", 2))
    assert not satisfies(sample.root, g)
    vacuous = implies(CountAtom([sel("r/$c")], ">=", 1), FALSE)
    assert satisfies(sample.root, vacuous)


def test_exists_and_not_exists(sample):
    assert satisfies(sample.root, exists(parse_boolean_pattern("r/b/a")))
    assert satisfies(sample.root, not_exists(parse_boolean_pattern("r/c")))
    assert not satisfies(sample.root, not_exists(parse_boolean_pattern("r//a")))


def test_augmented_pattern_alpha(sample):
    # select a-children whose subtree contains a node > 4
    base = sel("r/$a")
    refined = base.with_alpha(
        base.projected,
        CountAtom([_numeric_selector(">", 4)], ">=", 1),
    )
    selected = select(sample.root, refined)
    assert {v.children[0].label for v in selected} == {5}


def _numeric_selector(op, bound):
    from repro.xmltree.pattern import pattern

    p, root = pattern()
    node = root.descendant(NumericCompare(op, bound))
    return SFormula(p, node)


def test_min_max_document_semantics(sample):
    all_nodes = [sel("$*"), sel("*//$*")]
    assert satisfies(sample.root, MaxAtom(all_nodes, "=", 7))
    assert satisfies(sample.root, MinAtom(all_nodes, "=", 3))
    assert not satisfies(sample.root, MaxAtom(all_nodes, ">", 7))
    # Empty numeric set: MAX = -inf < anything; MIN = inf > anything.
    empty = Document(doc("r", "x"))
    assert satisfies(empty.root, MaxAtom([sel("r/$x")], "<", -1000))
    assert satisfies(empty.root, MinAtom([sel("r/$x")], ">", 1000))


def test_sum_avg_document_semantics(sample):
    all_nodes = [sel("$*"), sel("*//$*")]
    assert satisfies(sample.root, SumAtom(all_nodes, "=", 15))
    # AVG divides by the count of *selected* nodes (9 here), not numeric ones.
    assert satisfies(sample.root, AvgAtom(all_nodes, "=", Fraction(15, 9)))
    empty = Document(doc("r"))
    assert satisfies(empty.root, SumAtom([sel("r/$x")], "=", 0))
    assert satisfies(empty.root, AvgAtom([sel("r/$x")], "=", 0))


def test_ratio_document_semantics(sample):
    # fraction of a-nodes (3 of them) whose subtree holds a value > 4: 2/3
    a_nodes = [sel("*//$a")]
    witness = CountAtom([_numeric_selector(">", 4)], ">=", 1)
    assert satisfies(sample.root, RatioAtom(a_nodes, witness, "=", Fraction(2, 3)))
    assert not satisfies(sample.root, RatioAtom(a_nodes, witness, ">", Fraction(2, 3)))
    # empty selection -> ratio 0
    none = [sel("*//$zzz")]
    assert satisfies(sample.root, RatioAtom(none, TRUE, "=", 0))


def test_atom_requires_selectors():
    with pytest.raises(ValueError):
        CountAtom([], ">=", 1)
    with pytest.raises(ValueError):
        RatioAtom([], TRUE, ">=", 1)


def test_sformula_rejects_foreign_node(sample):
    s1, s2 = sel("r/$a"), sel("r/$b")
    with pytest.raises(ValueError):
        SFormula(s1.pattern, s2.projected)


def test_sformula_clone_refinement(sample):
    base = sel("r/$a")
    clone = base.clone(refine_projected=NumericCompare(">", 0))
    assert select(sample.root, clone) == set()  # 'a' labels are not numeric
    assert len(select(sample.root, base)) == 2  # original untouched


def test_operator_sugar(sample):
    a = CountAtom([sel("r/$a")], ">=", 1)
    b = CountAtom([sel("r/$b")], ">=", 1)
    assert satisfies(sample.root, a & b)
    assert satisfies(sample.root, a | CountAtom([sel("r/$zz")], ">=", 1))
    assert not satisfies(sample.root, ~a)


def test_closure_round_trip_probability():
    """¬¬γ and ∨-via-¬∧ must agree with γ on random documents."""
    rng = random.Random(31)
    for _ in range(40):
        pd = random_pdocument(rng)
        f = random_formula(rng)
        document = random_instance(pd, rng)
        evaluator = DocumentEvaluator()
        value = evaluator.satisfies(document.root, f)
        assert evaluator.satisfies(document.root, negation(negation(f))) == value
        assert evaluator.satisfies(document.root, disjunction([f, FALSE])) == value
        assert evaluator.satisfies(document.root, conjunction([f, TRUE])) == value
