"""Shared Hypothesis strategies for the property-based suites.

Every randomized differential test in the repo (evaluator vs. baseline,
circuit vs. evaluator, numeric backends vs. exact) draws its inputs from
here, so the input distribution is defined once: a seeded ``random.Random``
feeds :mod:`repro.workloads.random_gen`, and Hypothesis shrinks over the
seed.  Drawing the *rng* (rather than a finished p-document) lets a test
keep consuming the same stream for its formula — formula shape is
correlated with document shape exactly as the generators intend.
"""

from __future__ import annotations

import random
from fractions import Fraction

from hypothesis import HealthCheck, settings, strategies as st

from repro.workloads.random_gen import random_formula, random_pdocument

# One settings profile for every property suite: these tests enumerate
# possible worlds (the baseline) or run several evaluator passes per
# example, so the per-example deadline is off and slow examples are fine.
DEFAULT_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10**9)


@st.composite
def rngs(draw) -> random.Random:
    """A deterministically seeded ``random.Random`` (shrinks over the seed)."""
    return random.Random(draw(seeds))


@st.composite
def pdoc_formula_pairs(
    draw,
    *,
    formulas: int = 1,
    allow_exp: bool = False,
    numeric: bool = False,
    allow_ratio: bool = True,
    allow_minmax: bool = False,
    max_nodes: int = 9,
    max_depth: int = 4,
):
    """(p-document, [c-formulas]) drawn from one seeded stream."""
    rng = draw(rngs())
    pdoc = random_pdocument(
        rng,
        max_nodes=max_nodes,
        max_depth=max_depth,
        allow_exp=allow_exp,
        numeric=numeric,
    )
    produced = [
        random_formula(rng, allow_ratio=allow_ratio, allow_minmax=allow_minmax)
        for _ in range(formulas)
    ]
    return pdoc, produced


def reestimate(pdoc, rng: random.Random):
    """Jitter every distributional probability to a 6-significant-digit
    rational — the "re-estimated parameters" regime where exact ``Fraction``
    denominators blow up and the float fast path earns its keep.  Mux/exp
    weight vectors are renormalized so they still sum below/at 1.
    """
    copy = pdoc.clone()
    for node in copy.distributional_nodes():
        if node.kind == "exp":
            weights = [
                Fraction(rng.randrange(1, 999_999), 1_000_000)
                for _ in node.subsets
            ]
            total = sum(weights)
            node.subsets = [
                (subset, weight / total)
                for (subset, _), weight in zip(node.subsets, weights)
            ]
            continue
        if node.kind == "mux":
            weights = [
                Fraction(rng.randrange(1, 999_999), 1_000_000)
                for _ in node.probs
            ]
            total = sum(weights) + Fraction(rng.randrange(1, 999_999), 1_000_000)
            node.probs = [weight / total for weight in weights]
        else:
            node.probs = [
                Fraction(rng.randrange(900_000, 999_999), 1_000_000)
                for _ in node.probs
            ]
    return copy
