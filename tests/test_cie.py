"""Tests for the PrXML^{cie} probabilistic-tree model (Section 7.3)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.pdoc.cie import (
    CieDocument,
    CieNode,
    cie_probability,
    cie_world_distribution,
    every_a_has_a_child_formula,
    three_sat_reduction,
)
from repro.core.formulas import CountAtom, SFormula
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def correlated_pair():
    """Two leaves guarded by the same event: perfectly correlated — the
    kind of cross-tree dependency ind/mux cannot express locally."""
    root = CieNode("ord", "r")
    left = root.ordinary("left")
    right = root.ordinary("right")
    left.cie().add_child("x", [("e", True)])
    right.cie().add_child("y", [("e", True)])
    return CieDocument(root, {"e": Fraction(1, 3)})


def test_world_distribution_sums_to_one():
    cdoc = correlated_pair()
    dist = cie_world_distribution(cdoc)
    assert sum(dist.values()) == 1
    assert len(dist) == 2  # both present, or both absent


def test_cross_tree_correlation():
    cdoc = correlated_pair()
    both = CountAtom([sel("r/left/$x")], "=", 1) & CountAtom([sel("r/right/$y")], "=", 1)
    neither = CountAtom([sel("r/left/$x")], "=", 0) & CountAtom(
        [sel("r/right/$y")], "=", 0
    )
    assert cie_probability(cdoc, both) == Fraction(1, 3)
    assert cie_probability(cdoc, neither) == Fraction(2, 3)


def test_negative_literals():
    root = CieNode("ord", "r")
    guard = root.cie()
    guard.add_child("yes", [("e", True)])
    guard.add_child("no", [("e", False)])
    cdoc = CieDocument(root, {"e": Fraction(1, 4)})
    p_yes = cie_probability(cdoc, CountAtom([sel("r/$yes")], "=", 1))
    p_no = cie_probability(cdoc, CountAtom([sel("r/$no")], "=", 1))
    assert p_yes == Fraction(1, 4)
    assert p_no == Fraction(3, 4)
    exclusive = CountAtom([sel("r/$yes")], "=", 1) & CountAtom([sel("r/$no")], "=", 1)
    assert cie_probability(cdoc, exclusive) == 0


def test_undeclared_event_rejected():
    root = CieNode("ord", "r")
    root.cie().add_child("x", [("mystery", True)])
    with pytest.raises(ValueError, match="undeclared"):
        CieDocument(root, {})


def test_three_sat_reduction_satisfiable():
    # (a ∨ b) ∧ (¬a ∨ b): satisfiable (b = true)
    clauses = [[("a", True), ("b", True)], [("a", False), ("b", True)]]
    cdoc = three_sat_reduction(clauses)
    formula = every_a_has_a_child_formula()
    assert cie_probability(cdoc, formula) > 0


def test_three_sat_reduction_unsatisfiable():
    # a ∧ ¬a: unsatisfiable
    clauses = [[("a", True)], [("a", False)]]
    cdoc = three_sat_reduction(clauses)
    formula = every_a_has_a_child_formula()
    assert cie_probability(cdoc, formula) == 0


def test_three_sat_probability_counts_models():
    # a single clause (a ∨ b): 3 of 4 assignments satisfy it
    clauses = [[("a", True), ("b", True)]]
    cdoc = three_sat_reduction(clauses)
    formula = every_a_has_a_child_formula()
    assert cie_probability(cdoc, formula) == Fraction(3, 4)
