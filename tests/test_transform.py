"""Tests for the semantics-preserving p-document rewrites.

Every rewrite must leave the *document distribution* untouched; the
structural claims (fewer nodes, no ind-under-ind, …) are asserted on top.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.pdoc.enumerate import world_distribution
from repro.pdoc.pdocument import EXP, IND, MUX, PDocument, PNode, pdocument
from repro.pdoc.transform import (
    collapse_ind_chains,
    exp_to_ind_mux,
    inline_sure_edges,
    normalize,
    prune_impossible,
)
from repro.workloads.random_gen import random_pdocument


def assert_same_distribution(before: PDocument, after: PDocument) -> None:
    assert world_distribution(before) == world_distribution(after)


def test_prune_impossible_edges():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    dead = PNode("ord", "dead")
    dead.ordinary("buried")
    ind.add_edge(dead, Fraction(0))
    pd.validate()
    pruned = prune_impossible(pd)
    assert_same_distribution(pd, pruned)
    labels = {n.label for n in pruned.ordinary_nodes()}
    assert "dead" not in labels and "buried" not in labels


def test_prune_impossible_exp_subsets():
    pd, root = pdocument("r")
    exp = root.exp()
    exp.add_exp_child("a")
    exp.add_exp_child("never")
    exp.set_exp_distribution(
        [((0,), Fraction(1, 2)), ((0, 1), Fraction(0)), ((), Fraction(1, 2))]
    )
    pd.validate()
    pruned = prune_impossible(pd)
    assert_same_distribution(pd, pruned)
    assert "never" not in {n.label for n in pruned.ordinary_nodes()}


def test_prune_drops_emptied_distributional_nodes():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("gone", Fraction(0))
    root.ordinary("stay")
    pd.validate()
    pruned = prune_impossible(pd)
    pruned.validate()  # the childless ind node must have disappeared
    assert_same_distribution(pd, pruned)
    assert all(n.kind != IND for n in pruned.nodes())


def test_inline_sure_ind_edges():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("sure", Fraction(1))
    ind.add_edge("maybe", Fraction(1, 2))
    pd.validate()
    inlined = inline_sure_edges(pd)
    assert_same_distribution(pd, inlined)
    # 'sure' now hangs directly off the root
    sure = next(n for n in inlined.ordinary_nodes() if n.label == "sure")
    assert sure.parent.kind == "ord"


def test_inline_single_sure_mux():
    pd, root = pdocument("r")
    mux = root.mux()
    mux.add_edge("only", Fraction(1))
    pd.validate()
    inlined = inline_sure_edges(pd)
    assert_same_distribution(pd, inlined)
    assert all(n.kind != MUX for n in inlined.nodes())


def test_collapse_single_edge_inner():
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1, 2))
    inner.add_edge("x", Fraction(1, 2))
    outer.add_edge("z", Fraction(1, 3))
    pd.validate()
    collapsed = collapse_ind_chains(pd)
    assert_same_distribution(pd, collapsed)
    ind_nodes = [n for n in collapsed.nodes() if n.kind == IND]
    assert len(ind_nodes) == 1
    assert sorted(map(str, ind_nodes[0].probs)) == ["1/3", "1/4"]


def test_collapse_sure_outer_edge():
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1))  # surely reached: edges are top-level
    inner.add_edge("x", Fraction(1, 2))
    inner.add_edge("y", Fraction(1, 4))
    pd.validate()
    collapsed = collapse_ind_chains(pd)
    assert_same_distribution(pd, collapsed)
    ind_nodes = [n for n in collapsed.nodes() if n.kind == IND]
    assert len(ind_nodes) == 1
    assert sorted(map(str, ind_nodes[0].probs)) == ["1/2", "1/4"]


def test_collapse_refuses_correlated_inner():
    """The unsound general flattening (caught by the differential test):
    a multi-child inner ind node under a fractional edge is correlated
    through the inner node's existence and must stay put."""
    pd, root = pdocument("r")
    outer = root.ind()
    inner = PNode("ind")
    outer.add_edge(inner, Fraction(1, 2))
    inner.add_edge("x", Fraction(1, 2))
    inner.add_edge("y", Fraction(1, 4))
    pd.validate()
    collapsed = collapse_ind_chains(pd)
    assert_same_distribution(pd, collapsed)
    assert sum(1 for n in collapsed.nodes() if n.kind == IND) == 2


def test_collapse_triple_chain():
    pd, root = pdocument("r")
    a = root.ind()
    b = PNode("ind")
    c = PNode("ind")
    a.add_edge(b, Fraction(1, 2))
    b.add_edge(c, Fraction(1, 2))
    c.add_edge("deep", Fraction(1, 2))
    pd.validate()
    collapsed = collapse_ind_chains(pd)
    assert_same_distribution(pd, collapsed)
    only_ind = [n for n in collapsed.nodes() if n.kind == IND]
    assert len(only_ind) == 1
    assert only_ind[0].probs == [Fraction(1, 8)]


def test_exp_to_ind_when_product_form():
    pd, root = pdocument("r")
    exp = root.exp()
    exp.add_exp_child("a")
    exp.add_exp_child("b")
    # independent marginals 1/2 and 1/4, written out explicitly
    exp.set_exp_distribution(
        [
            ((0, 1), Fraction(1, 8)),
            ((0,), Fraction(3, 8)),
            ((1,), Fraction(1, 8)),
            ((), Fraction(3, 8)),
        ]
    )
    pd.validate()
    rewritten = exp_to_ind_mux(pd)
    assert_same_distribution(pd, rewritten)
    assert all(n.kind != EXP for n in rewritten.nodes())


def test_exp_with_correlation_left_alone():
    pd, root = pdocument("r")
    exp = root.exp()
    exp.add_exp_child("a")
    exp.add_exp_child("b")
    exp.set_exp_distribution([((0, 1), Fraction(1, 2)), ((), Fraction(1, 2))])
    pd.validate()
    rewritten = exp_to_ind_mux(pd)
    assert_same_distribution(pd, rewritten)
    assert any(n.kind == EXP for n in rewritten.nodes())


def test_normalize_randomized():
    rng = random.Random(15)
    for _ in range(30):
        pd = random_pdocument(rng, allow_exp=True)
        normalized = normalize(pd)
        assert_same_distribution(pd, normalized)
        # no *single-edge* ind-under-ind survives normalization
        for node in normalized.nodes():
            if node.kind == IND:
                for child, p in zip(node.children, node.probs):
                    if child.kind == IND:
                        assert len(child.children) > 1 and p != 1


def test_normalize_never_mutates_input():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(0))
    ind.add_edge("b", Fraction(1))
    pd.validate()
    before = world_distribution(pd)
    normalize(pd)
    assert world_distribution(pd) == before
    assert len(pd.dist_edges()) == 2  # original untouched
