"""Integration tests for the PXDB facade (Section 3.2 / Section 4)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.naive import conditional_world_distribution
from repro.core.constraints import always
from repro.core.formulas import CountAtom, SFormula, TRUE, exists
from repro.core.pxdb import PXDB
from repro.pdoc.pdocument import pdocument
from repro.xmltree.parser import parse_boolean_pattern, parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def build_pdoc():
    pd, root = pdocument("shop")
    items = root.ind()
    items.add_edge("apple", Fraction(1, 2))
    items.add_edge("apple", Fraction(1, 2))
    items.add_edge("pear", Fraction(1, 2))
    pd.validate()
    return pd


def test_pxdb_rejects_inconsistent_constraints():
    pd = build_pdoc()
    impossible = always(sel("$shop"), sel("*/$plum"), ">=", 1)
    with pytest.raises(ValueError, match="not well-defined"):
        PXDB(pd, [impossible])
    # check=False defers the failure
    db = PXDB(pd, [impossible], check=False)
    assert not db.is_well_defined()


def test_constraint_probability_and_caching():
    pd = build_pdoc()
    c = always(sel("$shop"), sel("*/$apple"), ">=", 1)
    db = PXDB(pd, [c])
    value = db.constraint_probability()
    assert value == Fraction(3, 4)
    assert db.constraint_probability() is db.constraint_probability()  # cached


def test_mixed_constraints_and_formulas():
    pd = build_pdoc()
    c = always(sel("$shop"), sel("*/$apple"), ">=", 1)
    raw = CountAtom([sel("shop/$pear")], "<=", 1)
    db = PXDB(pd, [c, raw])
    assert db.is_well_defined()


def test_event_probability_is_conditional():
    pd = build_pdoc()
    c = always(sel("$shop"), sel("*/$apple"), ">=", 1)
    db = PXDB(pd, [c])
    two_apples = CountAtom([sel("shop/$apple")], "=", 2)
    assert db.event_probability(two_apples) == Fraction(1, 4) / Fraction(3, 4)
    assert db.event_probability(TRUE) == 1


def test_boolean_query():
    pd = build_pdoc()
    db = PXDB(pd)
    assert db.boolean_query(parse_boolean_pattern("shop/pear")) == Fraction(1, 2)


def test_query_labels_and_sample_roundtrip():
    pd = build_pdoc()
    c = always(sel("$shop"), sel("*/$apple"), ">=", 1)
    db = PXDB(pd, [c])
    labels = db.query_labels("shop/$*")
    # Pr(a specific apple | >= 1 apple) = (1/2) / (3/4) = 2/3.
    assert labels[("apple",)] == Fraction(2, 3)
    assert labels[("pear",)] == Fraction(1, 2)  # independent of the condition
    rng = random.Random(2)
    for _ in range(10):
        document = db.sample(rng)
        assert any(c.label == "apple" for c in document.root.children)


def test_document_probability_conditional():
    pd = build_pdoc()
    c = always(sel("$shop"), sel("*/$apple"), ">=", 1)
    db = PXDB(pd, [c])
    exact = conditional_world_distribution(pd, db.condition)
    for uids, p in exact.items():
        assert db.document_probability(pd.document_from_uids(uids)) == p
    total = sum(
        db.document_probability(pd.document_from_uids(uids)) for uids in exact
    )
    assert total == 1


def test_document_probability_of_violating_world():
    pd = build_pdoc()
    c = always(sel("$shop"), sel("*/$apple"), ">=", 1)
    db = PXDB(pd, [c])
    root_uid = pd.root.uid
    bare = pd.document_from_uids(frozenset({root_uid}))
    assert db.document_probability(bare) == 0


def test_empty_constraint_set_is_prior():
    pd = build_pdoc()
    db = PXDB(pd)
    assert db.constraint_probability() == 1
    f = exists(parse_boolean_pattern("shop/apple"))
    from repro.core.evaluator import probability

    assert db.event_probability(f) == probability(pd, f)
