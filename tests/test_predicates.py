"""Unit tests for label predicates (Section 2.3 / Section 7.2)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.xmltree.document import DocNode
from repro.xmltree.predicates import (
    ANY,
    IsNumeric,
    LabelEquals,
    LabelSuffix,
    NodeIs,
    NumericCompare,
    is_numeric_label,
    label,
    numeric_value,
    suffix,
)


def test_any_matches_everything():
    assert ANY.matches(DocNode("x"))
    assert ANY.matches(DocNode(3))


def test_label_equals():
    pred = LabelEquals("professor")
    assert pred.matches(DocNode("professor"))
    assert not pred.matches(DocNode("full professor"))


def test_label_equals_numeric():
    assert LabelEquals(3).matches(DocNode(3))
    assert not LabelEquals(3).matches(DocNode("3"))


def test_suffix_predicate():
    pred = LabelSuffix("professor")
    assert pred.matches(DocNode("full professor"))
    assert pred.matches(DocNode("professor"))
    assert not pred.matches(DocNode("professorship"))
    assert not pred.matches(DocNode(7))


def test_is_numeric_label():
    assert is_numeric_label(3)
    assert is_numeric_label(Fraction(1, 2))
    assert not is_numeric_label("3")
    assert not is_numeric_label(True)  # booleans are not data values


def test_numeric_value():
    assert numeric_value(3) == Fraction(3)
    assert numeric_value(Fraction(1, 2)) == Fraction(1, 2)


def test_is_numeric_predicate():
    assert IsNumeric().matches(DocNode(0))
    assert not IsNumeric().matches(DocNode("zero"))


@pytest.mark.parametrize(
    "op,value,matches,rejects",
    [
        (">", 3, 4, 3),
        (">=", 3, 3, 2),
        ("<", 3, 2, 3),
        ("<=", 3, 3, 4),
        ("=", 3, 3, 4),
        ("!=", 3, 4, 3),
    ],
)
def test_numeric_compare(op, value, matches, rejects):
    pred = NumericCompare(op, value)
    assert pred.matches(DocNode(matches))
    assert not pred.matches(DocNode(rejects))


def test_numeric_compare_rejects_text():
    assert not NumericCompare(">", 0).matches(DocNode("ten"))


def test_numeric_compare_fractions():
    assert NumericCompare(">", Fraction(1, 3)).matches(DocNode(Fraction(1, 2)))


def test_node_is():
    node = DocNode("x")
    assert NodeIs(node.uid).matches(node)
    assert not NodeIs(node.uid).matches(DocNode("x"))


def test_combinators():
    node = DocNode("full professor")
    both = suffix("professor") & LabelSuffix("full professor")
    assert both.matches(node)
    either = label("chair") | suffix("professor")
    assert either.matches(node)
    assert (~label("chair")).matches(node)
    assert not (~suffix("professor")).matches(node)


def test_shorthands():
    assert isinstance(label("x"), LabelEquals)
    assert isinstance(suffix("x"), LabelSuffix)
