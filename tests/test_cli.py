"""End-to-end tests for the command-line interface."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.cli import main
from repro.pdoc.pdocument import PNode, pdocument
from repro.pdoc.serialize import pdocument_to_xml
from repro.xmltree.serialize import document_to_xml

CONSTRAINTS = "forall catalog/$shelf : count(*/$book) >= 1\n"


@pytest.fixture()
def files(tmp_path):
    pd, root = pdocument("catalog")
    shelf = root.ordinary("shelf")
    books = shelf.ind()
    b1 = PNode("ord", "book")
    b1.ordinary("title").ordinary("Dune")
    books.add_edge(b1, Fraction(1, 2))
    b2 = PNode("ord", "book")
    b2.ordinary("title").ordinary("Solaris")
    books.add_edge(b2, Fraction(1, 4))
    pd.validate()

    pdoc_path = tmp_path / "catalog.pxml"
    pdoc_path.write_text(pdocument_to_xml(pd))
    constraints_path = tmp_path / "constraints.txt"
    constraints_path.write_text(CONSTRAINTS)
    return pdoc_path, constraints_path


def test_validate(files, capsys):
    pdoc_path, _ = files
    assert main(["validate", str(pdoc_path)]) == 0
    out = capsys.readouterr().out
    assert "ordinary nodes" in out


def test_sat(files, capsys):
    pdoc_path, constraints_path = files
    assert main(["sat", str(pdoc_path), "-c", str(constraints_path)]) == 0
    out = capsys.readouterr().out
    assert "Pr(P |= C) = 5/8" in out
    assert "well-defined PXDB: True" in out


def test_query(files, capsys):
    pdoc_path, constraints_path = files
    assert (
        main(
            [
                "query",
                str(pdoc_path),
                "-q",
                "catalog/shelf/book/title/$*",
                "-c",
                str(constraints_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Dune" in out and "Solaris" in out


def test_sample(files, capsys):
    pdoc_path, constraints_path = files
    assert (
        main(
            [
                "sample",
                str(pdoc_path),
                "-c",
                str(constraints_path),
                "-n",
                "3",
                "--seed",
                "7",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.count("<catalog>") == 3
    assert "<book>" in out  # every sample satisfies the constraint


def test_sample_stats_and_no_incremental(files, capsys):
    pdoc_path, constraints_path = files
    args = [
        "sample",
        str(pdoc_path),
        "-c",
        str(constraints_path),
        "-n",
        "2",
        "--seed",
        "7",
        "--stats",
    ]
    assert main(args) == 0
    captured = capsys.readouterr()
    assert captured.out.count("<catalog>") == 2
    assert "evaluations/sample" in captured.err
    assert "cache hits/misses" in captured.err
    # the from-scratch mode draws the same documents under the same seed
    assert main(args + ["--no-incremental"]) == 0
    again = capsys.readouterr()
    assert again.out == captured.out


def test_worlds_limit_and_guard(files, capsys):
    pdoc_path, _ = files
    assert main(["worlds", str(pdoc_path), "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("Pr =") == 2
    # the guard refuses huge enumerations
    assert main(["worlds", str(pdoc_path), "--max-edges", "1"]) == 1


def test_check_violations(files, tmp_path, capsys):
    _, constraints_path = files
    from repro.xmltree.document import Document, doc

    bad = Document(doc("catalog", doc("shelf", "lamp")))
    bad_path = tmp_path / "bad.xml"
    bad_path.write_text(document_to_xml(bad))
    assert main(["check", str(bad_path), "-c", str(constraints_path)]) == 1
    assert "violated" in capsys.readouterr().out

    good_path = tmp_path / "good.xml"
    good = Document(doc("catalog", doc("shelf", doc("book", "x"))))
    good_path.write_text(document_to_xml(good))
    assert main(["check", str(good_path), "-c", str(constraints_path)]) == 0


def test_skeleton(files, capsys):
    pdoc_path, _ = files
    assert main(["skeleton", str(pdoc_path)]) == 0
    out = capsys.readouterr().out
    assert "<title>" in out and "Dune" in out and "Solaris" in out


def test_stats(files, capsys):
    pdoc_path, _ = files
    assert main(["stats", str(pdoc_path)]) == 0
    out = capsys.readouterr().out
    assert "ordinary_nodes" in out
    assert "expected_size" in out
    assert "process_entropy_bits" in out


def test_error_handling(tmp_path, capsys):
    missing = tmp_path / "nope.pxml"
    assert main(["validate", str(missing)]) == 2
    assert "error:" in capsys.readouterr().err


def test_error_paths_are_one_line_exit_2(files, tmp_path, capsys):
    """Every malformed or missing input prints one ``error:`` line to
    stderr and exits 2 — no traceback leaks through any subcommand."""
    pdoc_path, constraints_path = files

    malformed = tmp_path / "broken.pxml"
    malformed.write_text("<catalog><unclosed")
    assert main(["sat", str(malformed), "-c", str(constraints_path)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "malformed XML" in err
    assert len(err.strip().splitlines()) == 1

    assert main(["sat", str(pdoc_path), "-c", str(tmp_path / "no.cons")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "cannot read constraint file" in err

    bad_constraints = tmp_path / "bad.cons"
    bad_constraints.write_text("forall gibberish\n")
    assert main(["query", str(pdoc_path), "-q", "catalog/$shelf",
                 "-c", str(bad_constraints)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "invalid constraint file" in err

    bad_document = tmp_path / "bad.xml"
    bad_document.write_text("<oops")
    assert main(["check", str(bad_document), "-c", str(constraints_path)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "malformed XML in document" in err

    assert main(["sample", str(tmp_path / "ghost.pxml")]) == 2
    assert capsys.readouterr().err.startswith("error:")


def test_sample_stats_no_incremental_reports_bypass(files, capsys):
    """With --no-incremental the stats block reports the from-scratch
    work and says so explicitly, instead of printing cross-run cache
    counters the bypassed engine never benefits from."""
    pdoc_path, constraints_path = files
    args = ["sample", str(pdoc_path), "-c", str(constraints_path),
            "-n", "2", "--seed", "7", "--stats", "--no-incremental"]
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "incremental engine bypassed" in err
    assert "evaluations/sample" in err
    assert "cache hits/misses" not in err


def test_serve_db_spec_parsing():
    from repro.cli import _parse_db_spec

    assert _parse_db_spec("uni=a.pxml:c.txt") == ("uni", "a.pxml", "c.txt")
    assert _parse_db_spec("uni=a.pxml") == ("uni", "a.pxml", None)
    for bad in ("noequals", "=a.pxml", "name=", "name=:c.txt"):
        with pytest.raises(ValueError, match="invalid --db spec"):
            _parse_db_spec(bad)


def test_serve_parser_wired():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--db", "uni=a.pxml:c.txt", "--port", "0", "--pool", "2"]
    )
    assert args.db == ["uni=a.pxml:c.txt"]
    assert args.port == 0 and args.pool == 2


# -- the circuit subcommand ---------------------------------------------------

def test_circuit_compile_and_stats(files, capsys):
    pdoc_path, constraints_path = files
    args = ["circuit", "compile", str(pdoc_path), "-c", str(constraints_path)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "compiled:" in out and "parameters" in out
    assert "Pr(P |= C) = 5/8" in out
    assert main(["circuit", "stats", str(pdoc_path)]) == 0
    out = capsys.readouterr().out
    assert "nodes:" in out and "rebinds: 0" in out


def test_circuit_eval_with_event_and_rebind(files, tmp_path, capsys):
    pdoc_path, constraints_path = files
    # Re-bind to a copy with the first book certain to appear.
    from repro.pdoc.parameters import apply_parameters, parameter_values
    from repro.pdoc.serialize import pdocument_from_xml

    edited = pdocument_from_xml(pdoc_path.read_text())
    values = parameter_values(edited)
    values[0] = Fraction(1)
    apply_parameters(edited, values)
    edited_path = tmp_path / "edited.pxml"
    edited_path.write_text(pdocument_to_xml(edited))

    args = ["circuit", "eval", str(pdoc_path), "-c", str(constraints_path),
            "-q", "catalog/shelf/book", "--rebind", str(edited_path)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "re-bound to the probabilities" in out
    assert "Pr(D |= catalog/shelf/book) = 1" in out


def test_circuit_rebind_structural_mismatch_exits_2(files, tmp_path, capsys):
    pdoc_path, constraints_path = files
    other = tmp_path / "other.pxml"
    from repro.workloads.university import figure1_pdocument

    other.write_text(pdocument_to_xml(figure1_pdocument()))
    args = ["circuit", "eval", str(pdoc_path), "-c", str(constraints_path),
            "--rebind", str(other)]
    assert main(args) == 2
    assert "structure differs" in capsys.readouterr().err


def test_circuit_grad_ranks_parameters(files, capsys):
    pdoc_path, constraints_path = files
    args = ["circuit", "grad", str(pdoc_path), "-c", str(constraints_path),
            "--top", "1"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "most influential first" in out
    assert out.count("ind@") == 1  # --top limits the listing


def test_approx(files, capsys):
    pdoc_path, constraints_path = files
    args = [
        "approx",
        str(pdoc_path),
        "-c",
        str(constraints_path),
        "-e",
        "count(*//$book) >= 2",
        "--epsilon",
        "0.05",
        "--seed",
        "42",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Pr(event | C) ~=" in out
    assert "rule=bernstein" in out
    assert "stopped=target" in out
    assert "seed          = 42" in out
    # Deterministic: the same seed reprints the identical report.
    assert main(args) == 0
    assert capsys.readouterr().out == out


def test_approx_budget_warning(files, capsys):
    pdoc_path, constraints_path = files
    assert (
        main(
            [
                "approx",
                str(pdoc_path),
                "-c",
                str(constraints_path),
                "-e",
                "count(*//$book) >= 2",
                "--epsilon",
                "0.01",
                "--max-samples",
                "100",
                "--rule",
                "hoeffding",
                "--seed",
                "1",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "stopped=max_samples" in captured.out
    assert "budget exhausted" in captured.err


def test_approx_bad_event(files, capsys):
    pdoc_path, _ = files
    assert main(["approx", str(pdoc_path), "-e", "nonsense"]) == 2
    assert "error:" in capsys.readouterr().err


# -- fuzz subcommand ----------------------------------------------------------

def test_fuzz_list(capsys):
    assert main(["fuzz", "--list"]) == 0
    out = capsys.readouterr().out
    assert "pairwise coverage" in out
    assert "specs" in out


def test_fuzz_small_run_writes_ledger(tmp_path, capsys):
    import json

    ledger = tmp_path / "ledger.json"
    assert (
        main(
            [
                "fuzz",
                "--seed", "3",
                "--budget", "4",
                "--artifacts", str(tmp_path / "artifacts"),
                "--ledger", str(ledger),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "4 instances" in out
    assert "0 disagreements" in out
    report = json.loads(ledger.read_text())
    assert report["schema"] == "pxdb-fuzz-report/1"
    assert report["instances"] == 4
    assert report["disagreements"] == 0
    assert report["coverage"]["total_pairs"] == 197


def test_fuzz_metrics_flag_renders_counters(tmp_path, capsys):
    assert (
        main(
            [
                "fuzz",
                "--budget", "2",
                "--artifacts", str(tmp_path),
                "--metrics",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "pxdb_fuzz_instances_total 2" in out


def test_fuzz_spec_file_and_artifact_seed(tmp_path, capsys):
    import json

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({"spec": {"kinds": "mux"}, "seed": 9}))
    assert (
        main(
            [
                "fuzz",
                "--spec", str(spec_file),
                "--budget", "1",
                "--artifacts", str(tmp_path / "artifacts"),
            ]
        )
        == 0
    )
    assert "1 instances (seed 9)" in capsys.readouterr().out


def test_fuzz_bad_spec_file_exits_2(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"kinds": "quantum"}')
    assert main(["fuzz", "--spec", str(bogus), "--budget", "1"]) == 2
    assert "error:" in capsys.readouterr().err
