"""Tests for the Monte-Carlo approximation baseline."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.montecarlo import (
    estimate_conditional_probability,
    estimate_probability,
    sample_size,
)
from repro.core.evaluator import probability
from repro.core.formulas import CountAtom, FALSE, SFormula, TRUE
from repro.pdoc.pdocument import pdocument
from repro.aggregates.sumavg import xi_sum_all
from repro.aggregates.hardness import subset_sum_pdocument
from repro.baseline.naive import naive_probability
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def build_pdoc():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("b", Fraction(1, 4))
    pd.validate()
    return pd


def test_sample_size_hoeffding():
    assert sample_size(0.05, 0.05) == 738
    assert sample_size(0.01, 0.05) > sample_size(0.05, 0.05)
    with pytest.raises(ValueError):
        sample_size(0)
    with pytest.raises(ValueError):
        sample_size(0.1, 1.5)


def test_sample_size_delegates_to_approx_bounds():
    """One Hoeffding formula in the codebase: the baseline re-exports the
    conditioned tier's implementation."""
    from repro.approx.bounds import hoeffding_sample_size

    for epsilon, delta in [(0.05, 0.05), (0.02, 0.05), (0.1, 0.01)]:
        assert sample_size(epsilon, delta) == hoeffding_sample_size(epsilon, delta)


def test_estimate_close_to_exact():
    pd = build_pdoc()
    formula = CountAtom([sel("r/$a")], ">=", 1)
    exact = float(probability(pd, formula))
    estimate = estimate_probability(pd, formula, samples=4000, rng=random.Random(1))
    assert abs(float(estimate) - exact) < 0.03


def test_estimate_handles_sum_atoms():
    """Additive approximation works even where exact evaluation is NP-hard."""
    pd = subset_sum_pdocument([2, 3, 5])
    formula = xi_sum_all(5)
    exact = float(naive_probability(pd, formula))
    estimate = estimate_probability(pd, formula, samples=4000, rng=random.Random(2))
    assert abs(float(estimate) - exact) < 0.03


def test_estimate_extremes():
    pd = build_pdoc()
    assert estimate_probability(pd, TRUE, samples=50, rng=random.Random(0)) == 1
    assert estimate_probability(pd, FALSE, samples=50, rng=random.Random(0)) == 0


def test_conditional_estimate():
    pd = build_pdoc()
    condition = CountAtom([sel("r/$a")], ">=", 1)
    event = CountAtom([sel("r/$b")], ">=", 1)
    estimate = estimate_conditional_probability(
        pd, event, condition, samples=4000, rng=random.Random(3)
    )
    assert estimate is not None
    assert abs(float(estimate) - 0.25) < 0.03  # a and b are independent


def test_conditional_estimate_degrades_to_none():
    pd, root = pdocument("r")
    root.ind().add_edge("rare", Fraction(1, 10**6))
    pd.validate()
    condition = CountAtom([sel("r/$rare")], ">=", 1)
    estimate = estimate_conditional_probability(
        pd, TRUE, condition, samples=50, rng=random.Random(4)
    )
    assert estimate is None
