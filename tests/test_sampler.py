"""Tests for the conditional sampler (Figure 3 / Theorems 6.1-6.2).

Exact checks where possible (deterministic regimes, support containment,
per-world frequencies against exact conditional probabilities with a
chi-square bound); the heavy statistical validation also runs in
benchmarks/bench_sampling.py.
"""

from __future__ import annotations

import random
from collections import Counter
from fractions import Fraction

import pytest
from scipy import stats

from repro.baseline.naive import conditional_world_distribution
from repro.baseline.rejection import RejectionBudgetExceeded, rejection_sample
from repro.core.formulas import (
    CountAtom,
    DocumentEvaluator,
    SFormula,
    TRUE,
    conjunction,
    implies,
    negation,
)
from repro.core.sampler import bernoulli, deterministic_instance, sample
from repro.pdoc.enumerate import world_distribution
from repro.pdoc.pdocument import pdocument
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.xmltree.parser import parse_selector


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def small_pxdb():
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("b", Fraction(2, 5))
    mux = root.mux()
    mux.add_edge("c", Fraction(3, 10))
    mux.add_edge("d", Fraction(1, 2))
    pd.validate()
    condition = conjunction(
        [
            implies(
                CountAtom([sel("r/$b")], ">=", 1), CountAtom([sel("r/$a")], ">=", 1)
            ),
            negation(
                conjunction(
                    [
                        CountAtom([sel("r/$c")], ">=", 1),
                        CountAtom([sel("r/$a")], "=", 2),
                    ]
                )
            ),
        ]
    )
    return pd, condition


def test_bernoulli_exactness():
    rng = random.Random(0)
    n = 20000
    hits = sum(bernoulli(Fraction(1, 3), rng) for _ in range(n))
    assert abs(hits / n - 1 / 3) < 0.02
    assert bernoulli(Fraction(0), rng) is False
    assert bernoulli(Fraction(1), rng) is True


def test_sample_satisfies_constraints():
    pd, condition = small_pxdb()
    rng = random.Random(5)
    for _ in range(50):
        document = sample(pd, condition, rng)
        assert DocumentEvaluator().satisfies(document.root, condition)


def test_sample_support_containment():
    pd, condition = small_pxdb()
    exact = conditional_world_distribution(pd, condition)
    rng = random.Random(6)
    for _ in range(120):
        assert sample(pd, condition, rng).uid_set() in exact


def test_sample_distribution_chi_square():
    pd, condition = small_pxdb()
    exact = conditional_world_distribution(pd, condition)
    rng = random.Random(7)
    n = 3000
    counts = Counter(sample(pd, condition, rng).uid_set() for _ in range(n))
    worlds = sorted(exact, key=sorted)
    observed = [counts.get(w, 0) for w in worlds]
    expected = [float(exact[w]) * n for w in worlds]
    _, p_value = stats.chisquare(observed, expected)
    assert p_value > 1e-4, f"sampler distribution looks wrong (p={p_value})"


def test_unconditioned_sampling_equals_prior():
    pd, _ = small_pxdb()
    prior = world_distribution(pd)
    rng = random.Random(8)
    n = 3000
    counts = Counter(sample(pd, TRUE, rng).uid_set() for _ in range(n))
    tv = sum(abs(counts.get(w, 0) / n - float(p)) for w, p in prior.items()) / 2
    assert tv < 0.05


def test_inconsistent_constraints_rejected():
    pd, _ = small_pxdb()
    impossible = CountAtom([sel("r/$zzz")], ">=", 1)
    with pytest.raises(ValueError):
        sample(pd, impossible, random.Random(0))


def test_forcing_constraint_determinizes():
    """A constraint satisfied by exactly one world forces that world."""
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("b", Fraction(1, 2))
    pd.validate()
    only_a = conjunction(
        [
            CountAtom([sel("r/$a")], "=", 1),
            CountAtom([sel("r/$b")], "=", 0),
        ]
    )
    rng = random.Random(1)
    for _ in range(10):
        document = sample(pd, only_a, rng)
        assert sorted(c.label for c in document.root.children) == ["a"]


def test_deterministic_instance_requires_determinism():
    pd, root = pdocument("r")
    root.ind().add_edge("a", Fraction(1, 2))
    pd.validate()
    with pytest.raises(ValueError):
        deterministic_instance(pd)


def test_sampler_matches_baseline_on_random_instances():
    """On random PXDBs the sampler's empirical distribution must track the
    exact conditional distribution (coarse TV bound, many instances)."""
    rng = random.Random(44)
    tested = 0
    while tested < 5:
        pd = random_pdocument(rng, max_nodes=6)
        condition = random_formula(rng)
        try:
            exact = conditional_world_distribution(pd, condition)
        except ValueError:
            continue
        if len(exact) < 2:
            continue
        tested += 1
        n = 600
        counts = Counter(sample(pd, condition, rng).uid_set() for _ in range(n))
        assert set(counts) <= set(exact)
        tv = sum(abs(counts.get(w, 0) / n - float(p)) for w, p in exact.items()) / 2
        assert tv < 0.15


def test_rejection_baseline_agrees():
    pd, condition = small_pxdb()
    rng = random.Random(9)
    document, attempts = rejection_sample(pd, condition, rng)
    assert DocumentEvaluator().satisfies(document.root, condition)
    assert attempts >= 1


def test_sample_with_shared_engine_stays_correct():
    """A single engine reused across many draws must not skew the
    distribution (chi-square against the exact conditional)."""
    from repro.core.evaluator import IncrementalEngine

    pd, condition = small_pxdb()
    exact = conditional_world_distribution(pd, condition)
    engine = IncrementalEngine.for_formula(condition)
    rng = random.Random(77)
    n = 3000
    counts = Counter(
        sample(pd, condition, rng, engine=engine).uid_set() for _ in range(n)
    )
    worlds = sorted(exact, key=sorted)
    observed = [counts.get(w, 0) for w in worlds]
    expected = [float(exact[w]) * n for w in worlds]
    _, p_value = stats.chisquare(observed, expected)
    assert p_value > 1e-4, f"shared-engine sampler looks wrong (p={p_value})"
    assert engine.stats()["cache_hits"] > 0


def test_sample_reports_evaluations_through_engine():
    from repro.core.evaluator import IncrementalEngine

    pd, condition = small_pxdb()
    engine = IncrementalEngine.for_formula(condition)
    sample(pd, condition, random.Random(2), engine=engine)
    # One run for q_0 plus one per still-undetermined edge.
    edges = len(pd.dist_edges())
    assert 1 <= engine.stats()["runs"] <= 1 + edges


def test_rejection_baseline_budget():
    pd, root = pdocument("r")
    root.ind().add_edge("a", Fraction(1, 1000))
    pd.validate()
    needs_a = CountAtom([sel("r/$a")], ">=", 1)
    with pytest.raises(RejectionBudgetExceeded):
        rejection_sample(pd, needs_a, random.Random(1), max_attempts=3)
