"""Tests for the evaluator's structural cache and state-pruning ablation.

Both optimizations must be *invisible*: identical probabilities with and
without them, on randomized instances — and the cache must disable itself
whenever a predicate inspects node identity (where sharing is unsound).
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.aggregates.minmax import rewrite
from repro.core.compiler import Registry
from repro.core.constraints import constraints_formula
from repro.core.evaluator import Evaluation, probability
from repro.core.formulas import CountAtom, SFormula, exists
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.workloads.university import figure1_constraints, scaled_university
from repro.xmltree.parser import parse_selector
from repro.xmltree.pattern import Pattern, PatternNode
from repro.xmltree.predicates import ANY, NodeIs


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


def test_cache_agrees_with_uncached_on_random_instances():
    rng = random.Random(7)
    for _ in range(30):
        pdoc = random_pdocument(rng, allow_exp=True)
        formula = rewrite(random_formula(rng))
        cached = Evaluation(Registry([formula]), pdoc, use_cache=True).run()[0]
        plain = Evaluation(Registry([formula]), pdoc, use_cache=False).run()[0]
        assert cached == plain


def test_cache_hits_on_identical_departments():
    pdoc = scaled_university(departments=6, members=2, students=1, anonymous=True)
    condition = rewrite(constraints_formula(figure1_constraints()))
    evaluation = Evaluation(Registry([condition]), pdoc, use_cache=True)
    value = evaluation.run()[0]
    assert evaluation.cache_hits > 0
    # identical departments: 5 of the 6 come straight from the cache
    assert evaluation.cache_hits >= 5
    plain = Evaluation(Registry([condition]), pdoc, use_cache=False)
    assert plain.run()[0] == value
    assert plain.cache_hits == 0


def test_cache_disabled_for_node_identity_predicates():
    """NodeIs predicates see uids, so the registry must refuse caching."""
    pdoc = scaled_university(departments=2, members=2, students=1, anonymous=True)
    target = next(n for n in pdoc.ordinary_nodes() if n.label == "member")
    root = PatternNode(ANY)
    root.descendant(NodeIs(target.uid))
    formula = exists(Pattern(root))
    registry = Registry([formula])
    assert not registry.label_only
    evaluation = Evaluation(registry, pdoc, use_cache=True)
    assert not evaluation.use_cache
    # ... and the value is the node's marginal, not doubled by sharing.
    from repro.pdoc.enumerate import node_probability

    assert evaluation.run()[0] == node_probability(pdoc, target.uid)


def test_label_only_registry_flag():
    assert Registry([CountAtom([sel("a/$b")], ">=", 1)]).label_only
    root = PatternNode(NodeIs(1))
    assert not Registry([exists(Pattern(root))]).label_only


def test_canonicalization_ablation_agrees():
    rng = random.Random(11)
    for _ in range(25):
        pdoc = random_pdocument(rng)
        formula = rewrite(random_formula(rng))
        fast = Evaluation(Registry([formula], canonicalize=True), pdoc).run()[0]
        slow = Evaluation(Registry([formula], canonicalize=False), pdoc).run()[0]
        assert fast == slow


def test_canonicalization_reduces_state_count():
    # Without canonicalization, placed positions linger in the state even
    # when no future transition can inspect them.
    atom = CountAtom([sel("a/b//$c"), sel("x//y/$z")], ">=", 1)
    compact = Registry([atom], canonicalize=True)
    verbose = Registry([atom], canonicalize=False)
    assert compact.count_len < verbose.count_len


def test_deep_chain_small_cap_is_fast():
    """Recursion-safety regression: a 800-level chain evaluates fine when
    the numerical specification (and hence the signature) stays small."""
    from repro.workloads.synthetic import chain_pdocument

    pdoc = chain_pdocument(800, prob=Fraction(1, 2))
    formula = CountAtom([sel("root//$a")], ">=", 3)
    value = probability(pdoc, formula)
    assert 0 < value < 1
