"""Tests for the cost observatory: per-request cost attribution,
span-folded profiling, SLO burn-rate monitoring, the live dashboard, and
the tracer features they ride on (per-trace index, tail-based retention,
JSONL rotation, trace-finish observers)."""

from __future__ import annotations

import gc
import json
import re
import urllib.request
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.evaluator import Evaluation
from repro.obs import benchrec
from repro.obs.cost import CostObservatory, cost_units, fold_trace
from repro.obs.dashboard import render_dashboard
from repro.obs.profile import SpanProfiler, StackSampler
from repro.obs.slo import (
    PAGE_BURN,
    SLOMonitor,
    WARN_BURN,
    default_slos,
    parse_slo,
)
from repro.obs.spans import TRACER
from repro.pdoc.pdocument import PNode, pdocument
from repro.pdoc.serialize import pdocument_to_xml
from repro.service import (
    BatchScheduler,
    DocumentStore,
    Metrics,
    PXDBService,
    ServiceClient,
    start_async_server,
    start_server,
)
from repro.service.frontend import build_sharded_service
from repro.service.server import batch_payloads, dispatch_route, text_content_type
from repro.workloads.university import figure1_pdocument

CONSTRAINTS = "forall catalog/$shelf : count(*/$book) >= 1\n"
QUERY = "catalog/shelf/book/title/$*"
UNI_QUERY = "*//'ph.d. st.'/$name"


def make_catalog():
    pd, root = pdocument("catalog")
    shelf = root.ordinary("shelf")
    books = shelf.ind()
    b1 = PNode("ord", "book")
    b1.ordinary("title").ordinary("Dune")
    books.add_edge(b1, Fraction(1, 2))
    b2 = PNode("ord", "book")
    b2.ordinary("title").ordinary("Solaris")
    books.add_edge(b2, Fraction(1, 4))
    pd.validate()
    return pd


@pytest.fixture()
def catalog_files(tmp_path: Path) -> tuple[Path, Path]:
    pdoc_path = tmp_path / "catalog.pxml"
    pdoc_path.write_text(pdocument_to_xml(make_catalog()))
    constraints_path = tmp_path / "constraints.txt"
    constraints_path.write_text(CONSTRAINTS)
    return pdoc_path, constraints_path


@pytest.fixture()
def uni_files(tmp_path: Path) -> tuple[Path, Path]:
    pdoc_path = tmp_path / "uni.pxml"
    pdoc_path.write_text(pdocument_to_xml(figure1_pdocument()))
    cons_path = tmp_path / "uni.cons"
    cons_path.write_text(
        "forall university/$department : "
        "count(*//$member[position/~'professor'][position/chair]) <= 1\n"
    )
    return pdoc_path, cons_path


@pytest.fixture()
def tracing():
    TRACER.configure(enabled=True, ring_size=4096)
    TRACER.reset()
    yield TRACER
    TRACER.configure(enabled=False, tail_sample=False, ring_size=4096)
    TRACER.reset()


# -- per-trace index ----------------------------------------------------------

def test_trace_index_returns_exactly_one_trace(tracing):
    for index in range(5):
        with TRACER.span(f"root{index}"):
            with TRACER.span("child"):
                pass
    summaries = TRACER.traces()
    assert len(summaries) == 5
    for row in summaries:
        spans = TRACER.trace(row["trace_id"])
        assert len(spans) == 2
        assert {s["trace_id"] for s in spans} == {row["trace_id"]}
    assert TRACER.trace("missing") == []
    assert TRACER.stats()["traces_indexed"] == 5


def test_trace_index_survives_ring_eviction(tracing):
    TRACER.configure(ring_size=4)
    for index in range(6):
        with TRACER.span(f"r{index}"):
            pass
    # Ring holds the last 4 roots; evicted traces vanish from the index.
    summaries = TRACER.traces()
    assert {row["name"] for row in summaries} == {"r2", "r3", "r4", "r5"}
    assert TRACER.stats()["traces_indexed"] == 4
    # Shrinking the ring evicts (and unindexes) the dropped-left spans.
    TRACER.configure(ring_size=2)
    assert {row["name"] for row in TRACER.traces()} == {"r4", "r5"}


# -- tail-based retention -----------------------------------------------------

def test_tail_sampling_drops_fast_ok_traces(tracing):
    TRACER.configure(tail_sample=True, tail_slow_ms=10_000.0, tail_rate=0.0)
    with TRACER.span("fast"):
        with TRACER.span("inner"):
            pass
    assert TRACER.spans() == []
    stats = TRACER.stats()
    assert stats["traces_dropped"] == 1
    assert stats["spans_dropped"] == 2
    assert stats["traces_kept"] == 0


def test_tail_sampling_always_keeps_errors(tracing):
    TRACER.configure(tail_sample=True, tail_slow_ms=10_000.0, tail_rate=0.0)
    with pytest.raises(RuntimeError):
        with TRACER.span("failing"):
            with TRACER.span("inner"):
                raise RuntimeError("boom")
    spans = TRACER.spans()
    assert {s["name"] for s in spans} == {"failing", "inner"}
    assert TRACER.stats()["traces_kept"] == 1


def test_tail_sampling_rate_one_keeps_everything(tracing):
    TRACER.configure(tail_sample=True, tail_slow_ms=10_000.0, tail_rate=1.0)
    with TRACER.span("fast"):
        pass
    assert len(TRACER.spans()) == 1
    assert TRACER.stats()["traces_kept"] == 1


def test_tail_sampling_observers_see_dropped_traces(tracing):
    """Cost/profile harvest runs before the keep/drop decision, so the
    fold sees every trace even when the ring records none of them."""
    TRACER.configure(tail_sample=True, tail_slow_ms=10_000.0, tail_rate=0.0)
    seen: list[tuple[str, int]] = []

    def observer(root, spans):
        seen.append((root["name"], len(spans)))

    TRACER.on_trace_finish(observer)
    try:
        with TRACER.span("dropped"):
            with TRACER.span("inner"):
                pass
        assert TRACER.spans() == []  # the ring dropped it...
        assert seen == [("dropped", 2)]  # ...the observer saw it whole
    finally:
        TRACER.remove_trace_observer(observer)


def test_trace_observers_are_weakly_held(tracing):
    class Sink:
        def __init__(self):
            self.calls = 0

        def observe(self, root, spans):
            self.calls += 1

    sink = Sink()
    TRACER.on_trace_finish(sink.observe)
    with TRACER.span("one"):
        pass
    assert sink.calls == 1
    del sink
    gc.collect()
    with TRACER.span("two"):  # must not raise on the dead observer
        pass
    assert len(TRACER.spans()) == 2


# -- JSONL rotation -----------------------------------------------------------

def test_jsonl_rotation_never_drops_inflight_spans(tracing, tmp_path):
    path = tmp_path / "trace.jsonl"
    TRACER.configure(jsonl_path=path, jsonl_max_bytes=600)
    span_ids = []
    for index in range(6):
        with TRACER.span(f"span{index}") as span:
            span_ids.append(span.span_id)
    assert TRACER.stats()["jsonl_rotations"] >= 1
    rotated = tmp_path / "trace.jsonl.1"
    assert rotated.exists()
    lines = []
    for source in (rotated, path):
        lines.extend(source.read_text().splitlines())
    # Every line is a complete JSON record: rotation happens before the
    # write, so no span is ever torn across the boundary or dropped.
    records = [json.loads(line) for line in lines]
    recent = {record["span_id"] for record in records}
    # The span being written during each rotation survived, and the most
    # recent spans are all in the current file + its predecessor.
    assert set(span_ids[-len(records):]) <= recent
    assert span_ids[-1] in {
        json.loads(line)["span_id"] for line in path.read_text().splitlines()
    }


# -- cost attribution: the fold ----------------------------------------------

def _span(name, trace_id="t1", parent=None, attrs=None, duration=1.0,
          status="ok"):
    return {
        "trace_id": trace_id,
        "span_id": f"s-{name}-{id(attrs)}",
        "parent_id": parent,
        "name": name,
        "start": 0.0,
        "duration_ms": duration,
        "status": status,
        "pid": 1,
        "attributes": attrs or {},
    }


def test_fold_trace_request_root_counts_everything():
    root = _span("request.query", attrs={"db": "cat"}, duration=10.0)
    spans = [
        _span("dp.run", attrs={
            "nodes_computed": 40, "cache_hits": 7, "cache_misses": 33,
            "max_sig_width": 5,
        }),
        _span("engine.pass"),
        _span("circuit.forward", attrs={"gates": 12}),
        _span("sample.draw", attrs={"edges": 9}),
        _span("approx.estimate", attrs={"n": 100}),
        _span("pool.dispatch"),
        root,
    ]
    records = fold_trace(root, spans, shard_resolver=lambda db: 3)
    assert len(records) == 1
    record = records[0]
    assert record["route"] == "query"
    assert record["db"] == "cat"
    assert record["shard"] == 3
    assert record["share"] == 1.0
    assert record["nodes_computed"] == 40
    assert record["cache_hits"] == 7
    assert record["cache_misses"] == 33
    assert record["max_sig_width"] == 5
    assert record["dp_runs"] == 1
    assert record["gates"] == 12
    assert record["sample_edges"] == 9
    assert record["approx_samples"] == 100
    assert record["pool_dispatches"] == 1
    assert record["cost_units"] == 40 + 12 + 9 + 100
    assert record["cost_units"] == cost_units(record)


def test_fold_trace_splits_batch_proportionally():
    root = _span(
        "scheduler.batch",
        attrs={"db": "cat", "requests": 4, "ops": {"query": 3, "sat": 1}},
        duration=8.0,
    )
    spans = [
        _span("dp.run", attrs={"nodes_computed": 100, "cache_hits": 20,
                               "cache_misses": 80, "max_sig_width": 4}),
        root,
    ]
    records = {r["route"]: r for r in fold_trace(root, spans)}
    assert set(records) == {"query", "sat"}
    assert records["query"]["share"] == 0.75
    assert records["sat"]["share"] == 0.25
    assert records["query"]["nodes_computed"] == 75.0
    assert records["sat"]["nodes_computed"] == 25.0
    assert records["query"]["requests"] == 3
    assert records["sat"]["requests"] == 1
    total = records["query"]["duration_ms"] + records["sat"]["duration_ms"]
    assert total == pytest.approx(8.0)


def test_fold_trace_single_op_batch_keeps_exact_integers():
    root = _span(
        "scheduler.batch",
        attrs={"db": "cat", "requests": 1, "ops": {"query": 1}},
    )
    dp = _span("dp.run", attrs={"nodes_computed": 37, "cache_hits": 5,
                                "cache_misses": 32, "max_sig_width": 3})
    (record,) = fold_trace(root, [dp, root])
    assert record["share"] == 1.0
    # share == 1.0 must not launder the ints through float multiplication.
    assert record["nodes_computed"] == 37 and isinstance(
        record["nodes_computed"], int
    )
    assert record["cache_hits"] == 5 and isinstance(record["cache_hits"], int)


def test_cost_observatory_aggregates_and_ranks(tracing):
    obs = CostObservatory(top_n=2)
    for index, nodes in enumerate((10, 30, 20)):
        root = _span(f"request.query", trace_id=f"t{index}",
                     attrs={"db": "cat"})
        dp = _span("dp.run", trace_id=f"t{index}",
                   attrs={"nodes_computed": nodes, "cache_hits": 0,
                          "cache_misses": nodes, "max_sig_width": 2})
        obs.harvest(root, [dp, root])
    snap = obs.snapshot()
    assert snap["records"] == 3
    (entry,) = snap["entries"]
    assert entry["route"] == "query" and entry["db"] == "cat"
    assert entry["requests"] == 3
    assert entry["nodes_computed"] == 60
    assert entry["cost_units"] == 60.0
    # Top-requests ring is bounded and ranked by cost units, descending.
    assert [row["nodes_computed"] for row in snap["top_requests"]] == [30, 20]
    rows = obs.prometheus_rows()
    by_name = {name for name, _labels, _value, _kind in rows}
    assert "pxdb_cost_requests_total" in by_name
    assert "pxdb_cost_units_total" in by_name
    assert "pxdb_cost_max_sig_width" in by_name


# -- cost attribution: end to end against real front ends --------------------

def _wait_for(predicate, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def test_pooled_async_request_cost_matches_evaluator_counters(
    catalog_files, tracing, monkeypatch
):
    """The acceptance bar: a pooled async query's CostRecord carries the
    evaluator's own per-run DP counters, exactly."""
    # Reference run: the identical store, the identical joint pass, with
    # the evaluator's per-run counters captured straight off the object.
    captured: list[tuple[int, int, int, int]] = []
    real_run = Evaluation.run

    def capturing_run(self):
        out = real_run(self)
        captured.append((
            self.nodes_computed, self.cache_hits, self.cache_misses,
            self.max_sig_width,
        ))
        return out

    # The pool worker registers its store entry lazily inside the first
    # traced request, so that request is (correctly) charged for the
    # register-time warm-up pass too — the reference run mirrors that by
    # capturing from registration through the query's joint pass.
    monkeypatch.setattr(Evaluation, "run", capturing_run)
    reference_store = DocumentStore()
    reference_store.register("cat", *catalog_files)
    payloads = batch_payloads(
        reference_store.get("cat"), [{"op": "query", "query_text": QUERY}]
    )
    assert payloads[0]["answers"]
    assert captured, "the reference joint pass must run the evaluator"
    nodes = sum(c[0] for c in captured)
    hits = sum(c[1] for c in captured)
    misses = sum(c[2] for c in captured)
    width = max(c[3] for c in captured)
    monkeypatch.setattr(Evaluation, "run", real_run)

    # Live run: the same single query through the async front end backed
    # by the sharded worker pool (evaluated in a worker process, spans
    # ingested back, harvested into a CostRecord at root finish).
    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = build_sharded_service(store, shards=1, workers_per_shard=1)
    handle = start_async_server(service)
    try:
        client = ServiceClient(
            f"http://{handle.address[0]}:{handle.address[1]}"
        )
        assert client.query("cat", QUERY)

        def query_rows():
            return [
                r for r in service.costs.snapshot()["top_requests"]
                if r["route"] == "query"
            ]

        assert _wait_for(lambda: bool(query_rows()))
        rows = query_rows()
        snap = service.costs.snapshot()
        record = rows[0]
        assert record["share"] == 1.0
        assert record["db"] == "cat"
        assert record["dp_runs"] >= 1
        assert record["nodes_computed"] == nodes
        assert record["cache_hits"] == hits
        assert record["cache_misses"] == misses
        assert record["max_sig_width"] == width
        # The aggregate entry carries the same exact integers.
        entry = next(
            e for e in snap["entries"]
            if e["route"] == "query" and e["db"] == "cat"
        )
        assert entry["nodes_computed"] == nodes
        assert entry["cache_hits"] == hits
    finally:
        handle.stop()
        service.drain(5.0)
        if service.pool is not None:
            service.pool.shutdown()


def test_costs_topn_agrees_across_frontends(
    catalog_files, uni_files, tracing
):
    """Identical traffic (one query each against a big and a small db)
    must rank identically in /costs on the threaded and async front ends,
    with identical structural counters."""

    def run_threaded():
        store = DocumentStore()
        store.register("cat", *catalog_files)
        store.register("uni", *uni_files)
        TRACER.reset()
        service = PXDBService(store)
        server = start_server(service)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            assert client.query("uni", UNI_QUERY)
            assert client.query("cat", QUERY)
            assert _wait_for(lambda: service.costs.records_harvested >= 2)
            return service.costs.snapshot()
        finally:
            server.shutdown()
            server.server_close()

    def run_async():
        store = DocumentStore()
        store.register("cat", *catalog_files)
        store.register("uni", *uni_files)
        TRACER.reset()
        metrics = Metrics()
        scheduler = BatchScheduler(
            lambda db, requests: batch_payloads(store.get(db), requests),
            window=0.005,
            metrics=metrics,
        )
        service = PXDBService(store, metrics=metrics, scheduler=scheduler)
        handle = start_async_server(service)
        try:
            client = ServiceClient(
                f"http://{handle.address[0]}:{handle.address[1]}"
            )
            assert client.query("uni", UNI_QUERY)
            assert client.query("cat", QUERY)
            assert _wait_for(lambda: service.costs.records_harvested >= 2)
            return service.costs.snapshot()
        finally:
            handle.stop()
            scheduler.close()

    threaded = run_threaded()
    gc.collect()  # drop the dead service's weak observer before the next
    asynchronous = run_async()

    def key_rows(snapshot):
        return [
            (e["route"], e["db"], e["nodes_computed"], e["requests"])
            for e in snapshot["entries"]
            if e["route"] == "query"
        ]

    assert key_rows(threaded) == key_rows(asynchronous)
    # The big db ranks first on both — cost units are structural, so the
    # ordering is deterministic under scheduler jitter.
    assert [e["db"] for e in threaded["entries"]][0] == "uni"
    assert [e["db"] for e in asynchronous["entries"]][0] == "uni"


# -- span-folded profiling ----------------------------------------------------

def test_span_profiler_folds_self_time():
    profiler = SpanProfiler()
    root = _span("request.query", duration=10.0)
    child = _span("dp.run", parent=root["span_id"], duration=6.0)
    child["parent_id"] = root["span_id"]
    profiler.add_trace(root, [child, root])
    snap = profiler.snapshot()
    assert snap["source"] == "spans"
    assert snap["traces_folded"] == 1
    rows = {row["path"]: row for row in snap["paths"]}
    assert rows["request.query"]["self_ms"] == pytest.approx(4.0)
    assert rows["request.query"]["total_ms"] == pytest.approx(10.0)
    assert rows["request.query;dp.run"]["self_ms"] == pytest.approx(6.0)
    collapsed = profiler.collapsed()
    assert "request.query;dp.run 6000" in collapsed
    assert collapsed.endswith("\n")


def test_span_profiler_accumulates_across_traces():
    profiler = SpanProfiler()
    for _ in range(3):
        root = _span("request.sat", duration=2.0)
        profiler.add_trace(root, [root])
    rows = {row["path"]: row for row in profiler.snapshot()["paths"]}
    assert rows["request.sat"]["count"] == 3
    assert rows["request.sat"]["total_ms"] == pytest.approx(6.0)


def test_stack_sampler_sample_once():
    sampler = StackSampler(interval=0.5)
    folded = sampler.sample_once()
    assert folded >= 1  # at least this thread
    snap = sampler.snapshot()
    assert snap["source"] == "stacks"
    assert snap["samples"] == 1
    assert any("sample_once" in row["path"] or "test_" in row["path"]
               for row in snap["paths"])
    collapsed = sampler.collapsed()
    assert collapsed and all(
        line.rsplit(" ", 1)[1].isdigit()
        for line in collapsed.strip().splitlines()
    )
    assert not sampler.running


def test_profile_endpoint_sources(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = PXDBService(store)
    try:
        service.query("cat", QUERY)
        assert _wait_for(lambda: service.profiler.traces_folded >= 1)
        collapsed = service.profile_payload(fmt="collapsed")
        assert "request.query" in collapsed
        payload = service.profile_payload()
        assert payload["source"] == "spans"
        assert payload["traces_folded"] >= 1
        # Forcing the stack source starts the sampler lazily.
        stacks = service.profile_payload(source="stacks")
        assert stacks["source"] == "stacks"
        assert service.stack_sampler.running
        with pytest.raises(ValueError):
            service.profile_payload(fmt="svg")
    finally:
        service.stack_sampler.stop()


# -- SLO engine ---------------------------------------------------------------

def test_parse_slo_grammar():
    slo = parse_slo("query=p99:50ms:0.1%")
    assert slo["route"] == "query"
    assert slo["quantile"] == 0.99
    assert slo["threshold_ms"] == 50.0
    assert slo["latency_budget"] == pytest.approx(0.01)
    assert slo["error_budget"] == pytest.approx(0.001)
    assert parse_slo("sat=p95:2s:5%")["threshold_ms"] == 2000.0
    for bad in ("nope", "query=p99:50ms", "query=p0:50ms:1%",
                "query=p99:50ms:0%", "query=p99:50ms:100%",
                "query=q99:50ms:1%"):
        with pytest.raises(ValueError):
            parse_slo(bad)


def test_default_slos_cover_stock_routes():
    slos = default_slos()
    assert set(slos) == {"sat", "query", "topk", "sample", "approx"}
    assert all(s["threshold_ms"] == 1000.0 for s in slos.values())


class _FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


def test_slo_burn_rates_trip_page_on_sustained_errors():
    metrics = Metrics()
    clock = _FakeClock()
    monitor = SLOMonitor(
        metrics,
        {"query": parse_slo("query=p99:1000ms:1%")},
        clock=clock,
        min_requests=10,
        min_tick_s=0.0,
    )
    # Healthy hour of history first.
    for _ in range(200):
        metrics.observe("query", 0.001)
    monitor.tick()
    clock.now += 3600.0
    monitor.tick()
    # Then a sustained error storm: 50% errors >> 14.4 × the 1% budget.
    for _ in range(100):
        metrics.observe("query", 0.001)
        metrics.observe("query", 0.001)
        metrics.increment("query.errors")
    # Walk snapshots across both windows so 5m AND 1h burn.
    for step in range(13):
        clock.now += 300.0
        for _ in range(20):
            metrics.observe("query", 0.001)
            metrics.increment("query.errors")
        monitor.tick()
    report = {
        (row["route"], row["objective"]): row for row in monitor.evaluate()
    }
    errors = report[("query", "errors")]
    assert errors["state"] == "page"
    assert all(burn >= PAGE_BURN for burn in errors["burn"].values())
    assert monitor.state() == "page"
    payload = monitor.payload()
    assert payload["state"] == "page"
    assert payload["page_burn"] == PAGE_BURN and payload["warn_burn"] == WARN_BURN
    rows = monitor.prometheus_rows()
    states = {
        (labels["route"], labels["objective"]): value
        for name, labels, value, kind in rows
        if name == "pxdb_slo_state"
    }
    assert states[("query", "errors")] == 2


def test_slo_low_traffic_never_pages():
    metrics = Metrics()
    clock = _FakeClock()
    monitor = SLOMonitor(
        metrics,
        {"query": parse_slo("query=p99:1000ms:1%")},
        clock=clock,
        min_requests=10,
        min_tick_s=0.0,
    )
    monitor.tick()
    # Three requests, all errors — a 300x burn, but under min_requests.
    for _ in range(3):
        metrics.observe("query", 0.001)
        metrics.increment("query.errors")
    clock.now += 3700.0
    monitor.tick()
    report = {
        (row["route"], row["objective"]): row for row in monitor.evaluate()
    }
    assert report[("query", "errors")]["state"] == "ok"
    assert monitor.state() == "ok"


def test_slo_all_windows_must_burn():
    """A short error blip trips the 5m window but not the 1h window —
    the multi-window rule keeps the state at ok."""
    metrics = Metrics()
    clock = _FakeClock()
    monitor = SLOMonitor(
        metrics,
        {"query": parse_slo("query=p99:1000ms:1%")},
        clock=clock,
        min_requests=10,
        min_tick_s=0.0,
    )
    # 55 minutes of perfectly healthy traffic...
    for step in range(11):
        for _ in range(100):
            metrics.observe("query", 0.001)
        monitor.tick()
        clock.now += 300.0
    # ...then one bad 5-minute window.
    for _ in range(50):
        metrics.observe("query", 0.001)
        metrics.increment("query.errors")
    monitor.tick()
    report = {
        (row["route"], row["objective"]): row for row in monitor.evaluate()
    }
    errors = report[("query", "errors")]
    assert errors["burn"]["5m"] >= PAGE_BURN
    assert errors["burn"]["1h"] < WARN_BURN
    assert errors["state"] == "ok"


# -- dashboard ----------------------------------------------------------------

def test_dashboard_renders_self_contained_html(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = PXDBService(store)
    service.query("cat", QUERY)
    assert _wait_for(lambda: service.costs.records_harvested >= 1)
    html = service.dashboard_html()
    assert html.lstrip().startswith("<!doctype html>")
    for needle in ("SLO", "cost", "cat", "/metrics", "/costs", "/slo"):
        assert needle in html, f"dashboard missing {needle!r}"
    # Self-contained: no external scripts, stylesheets or images.
    assert "src=\"http" not in html and "href=\"http" not in html
    # XSS hygiene: markup-significant characters in names are escaped.
    evil = render_dashboard(
        {"counters": {"<script>": 1}, "latency": {}, "uptime_s": 1},
        {"state": "ok", "slos": []},
        {"entries": [], "top_requests": [], "records": 0},
        [],
    )
    assert "&lt;script&gt;" in evil
    assert "<script>" not in evil


def test_dashboard_route_and_content_types(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    service = PXDBService(store)
    status, html = dispatch_route(service, "/debug/dashboard", {})
    assert status == 200 and isinstance(html, str)
    assert text_content_type("/debug/dashboard").startswith("text/html")
    assert text_content_type("/metrics").startswith("text/plain; version=")
    assert text_content_type("/profile") == "text/plain; charset=utf-8"
    status, collapsed = dispatch_route(
        service, "/profile", {"format": "collapsed"}
    )
    assert status == 200 and isinstance(collapsed, str)
    status, costs = dispatch_route(service, "/costs", {})
    assert status == 200 and costs["records"] == 0
    status, slo = dispatch_route(service, "/slo", {})
    assert status == 200 and slo["state"] == "ok"


def test_frontend_content_types_match(catalog_files, tracing):
    """/profile, /costs, /slo and the dashboard answer with the same
    content types on the threaded and async front ends."""
    def fetch_types(base_url):
        types = {}
        for route in ("/debug/dashboard", "/profile?format=collapsed",
                      "/costs", "/slo"):
            with urllib.request.urlopen(base_url + route, timeout=30) as resp:
                types[route] = resp.headers.get("Content-Type")
        return types

    store = DocumentStore()
    store.register("cat", *catalog_files)
    service = PXDBService(store)
    server = start_server(service)
    try:
        host, port = server.server_address[:2]
        threaded = fetch_types(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
    gc.collect()

    store2 = DocumentStore()
    store2.register("cat", *catalog_files)
    service2 = PXDBService(store2)
    handle = start_async_server(service2)
    try:
        asynchronous = fetch_types(
            f"http://{handle.address[0]}:{handle.address[1]}"
        )
    finally:
        handle.stop()
    assert threaded == asynchronous
    assert threaded["/debug/dashboard"].startswith("text/html")
    assert threaded["/profile?format=collapsed"].startswith("text/plain")
    assert threaded["/costs"].startswith("application/json")


# -- Prometheus exposition completeness ---------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[0-9.eE+\-]+|NaN|[+\-]Inf)$"
)
_LABELS_RE = re.compile(
    r'^\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$'
)


def _validate_prometheus(text: str) -> None:
    """Line-level validation of the 0.0.4 exposition: every sample
    parses, and every series has exactly one HELP and one TYPE, both
    before its first sample."""
    described: dict[str, set] = {}
    sampled_first: set[str] = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            kind = line[2:6]
            parts = line.split(" ", 3)
            assert len(parts) >= 4, f"malformed comment: {line!r}"
            metric = parts[2]
            assert metric not in sampled_first, (
                f"{kind} for {metric} after its first sample"
            )
            kinds = described.setdefault(metric, set())
            assert kind not in kinds, f"duplicate {kind} for {metric}"
            kinds.add(kind)
            if kind == "TYPE":
                assert parts[3] in {
                    "counter", "gauge", "histogram", "summary", "untyped",
                }, f"bad type in {line!r}"
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        if match["labels"]:
            assert _LABELS_RE.match(match["labels"]), (
                f"malformed labels: {line!r}"
            )
        name = match["name"]
        base = re.sub(r"_(bucket|count|sum)$", "", name)
        metric = base if base in described else name
        assert metric in described, f"sample {name} has no HELP/TYPE"
        assert described[metric] == {"HELP", "TYPE"}, (
            f"{metric} missing HELP or TYPE"
        )
        sampled_first.add(metric)
        float(match["value"])  # parseable


def test_prometheus_exposition_is_complete(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = PXDBService(store)
    service.query("cat", QUERY)
    service.sat("cat")
    assert _wait_for(lambda: service.costs.records_harvested >= 1)
    text = service.metrics_prometheus()
    _validate_prometheus(text)
    assert "pxdb_cost_requests_total" in text
    assert "pxdb_cost_units_total" in text
    assert "pxdb_slo_burn_rate" in text
    assert "pxdb_slo_state" in text


def test_prometheus_validator_catches_missing_help():
    with pytest.raises(AssertionError):
        _validate_prometheus("pxdb_orphan_total 1\n")
    with pytest.raises(AssertionError):
        _validate_prometheus(
            "# HELP pxdb_x_total X.\n# TYPE pxdb_x_total counter\n"
            "pxdb_x_total 1\n# HELP pxdb_x_total X again.\n"
            "# TYPE pxdb_x_total counter\n"
        )
    _validate_prometheus(
        "# HELP pxdb_x_total X.\n# TYPE pxdb_x_total counter\n"
        'pxdb_x_total{route="query"} 1\npxdb_x_total{route="sat"} 2\n'
    )


# -- metrics payload wiring ---------------------------------------------------

def test_metrics_payload_carries_slo_and_costs(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    service = PXDBService(store)
    payload = service.metrics_payload()
    assert payload["slo"]["state"] == "ok"
    assert payload["costs"]["records"] == 0
    status, health = dispatch_route(service, "/health", {})
    assert status == 200 and health["slo"] == "ok"


# -- benchrec: the min-wall floor --------------------------------------------

def _bench_payload(wall, speedup=None):
    return {
        "schema": benchrec.SCHEMA, "area": "x",
        "generated_at": "now", "python": "3",
        "rows": [{
            "test": "t", "workload": "w", "wall_s": wall,
            "counters": {}, "speedup": speedup, "extra": {},
        }],
    }


def test_benchrec_min_wall_floor_suppresses_noise():
    # A 3x "regression" on a 0.5ms row is jitter: not flagged.
    assert benchrec.compare(
        _bench_payload(0.0005), _bench_payload(0.0015)
    ) == []
    # The same ratio above the floor is flagged.
    flagged = benchrec.compare(_bench_payload(0.05), _bench_payload(0.15))
    assert [f["kind"] for f in flagged] == ["wall_s"]
    # The floor is configurable; zero disables it.
    assert benchrec.compare(
        _bench_payload(0.0005), _bench_payload(0.0015), min_wall=0.0
    )
    # Crossing the floor (old below, new above) still flags.
    assert benchrec.compare(_bench_payload(0.004), _bench_payload(0.04))


def test_benchrec_cli_reports_floor(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_bench_payload(0.001)))
    new.write_text(json.dumps(_bench_payload(0.003)))
    # Sub-floor rows: clean diff, floor reported.
    assert benchrec.main([str(old), str(new)]) == 0
    out = capsys.readouterr().out
    assert "no regressions" in out and "min wall" in out
    # Lowering the floor via --min-wall flags the same rows.
    assert benchrec.main([str(old), str(new), "--min-wall", "0.0001"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "exempt" in out


# -- CLI: repro obs -----------------------------------------------------------

def test_cli_obs_against_live_server(catalog_files, tracing, capsys):
    from repro.cli import main as cli_main

    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = PXDBService(store)
    server = start_server(service)
    try:
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        client = ServiceClient(url)
        assert client.query("cat", QUERY)
        assert _wait_for(lambda: service.profiler.traces_folded >= 1)

        assert cli_main(["obs", "profile", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "request.query" in out

        assert cli_main(["obs", "costs", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "query" in out and "cat" in out

        assert cli_main(["obs", "slo", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "overall state: ok" in out

        assert cli_main(["obs", "costs", "--url", url, "--format", "json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["entries"]
    finally:
        server.shutdown()
        server.server_close()


def test_cli_obs_unreachable_server(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["obs", "profile", "--url", "http://127.0.0.1:1"]) == 2
    assert "error:" in capsys.readouterr().err


def test_client_profile_and_costs_roundtrip(catalog_files, tracing):
    store = DocumentStore()
    store.register("cat", *catalog_files)
    TRACER.reset()
    service = PXDBService(store)
    server = start_server(service)
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        assert client.query("cat", QUERY)
        assert _wait_for(lambda: service.profiler.traces_folded >= 1)
        collapsed = client.profile()
        assert "request.query" in collapsed
        payload = client.profile(fmt="json")
        assert payload["source"] == "spans"
        costs = client.costs()
        assert costs["entries"][0]["db"] == "cat"
        slo = client.slo()
        assert slo["state"] == "ok"
    finally:
        server.shutdown()
        server.server_close()
