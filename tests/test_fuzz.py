"""Tests for the differential fuzz harness (repro.workloads.fuzz) and the
satellite edges the PR-5 suite never fuzzed: approx interval-contains-
exact on generated aggregate events, scheduler heterogeneous-batch
identity on generated mixed workloads, and circuit ``rebind()`` after
generated parameter perturbations.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.baseline.naive import naive_probabilities
from repro.circuit import compile_formulas
from repro.core.evaluator import probabilities
from repro.core.formulas import conjunction
from repro.core.pxdb import PXDB
from repro.pdoc.parameters import parameter_values
from repro.service.frontend.scheduler import BatchScheduler
from repro.service.metrics import Metrics
from repro.service.server import (
    batch_payloads,
    query_payload,
    sat_payload,
    topk_payload,
)
from repro.service.store import DocumentStore
from repro.workloads.fuzz import (
    DEFAULT_MAX_ENUM_EDGES,
    FuzzConfig,
    FuzzDisagreement,
    FuzzFailure,
    check_instance,
    load_spec_file,
    perturb_parameters,
    run_fuzz,
    shrink_spec,
    write_artifact,
)
from repro.workloads.scenarios import (
    AXES,
    ScenarioSpec,
    generate,
    standard_matrix,
)


# -- the harness itself -------------------------------------------------------

def test_run_fuzz_smoke_zero_disagreements(tmp_path):
    metrics = Metrics()
    report = run_fuzz(
        seed=7, budget=6, artifact_dir=tmp_path, metrics=metrics
    )
    assert report.instances == 6
    assert report.disagreements == 0
    assert report.checks["exact-dp"] == 6
    assert report.checks["float64"] == 6
    assert report.checks["circuit"] == 6
    assert report.checks["rebind"] == 6
    assert metrics.counter("fuzz.instances") == 6
    assert metrics.counter("fuzz.disagreements") == 0
    assert not list(tmp_path.iterdir())
    # Counters surface under the pxdb_fuzz_* namespace.
    rendered = metrics.render_prometheus()
    assert "pxdb_fuzz_instances_total 6" in rendered


def test_run_fuzz_is_deterministic(tmp_path):
    first = run_fuzz(seed=3, budget=4, artifact_dir=tmp_path)
    second = run_fuzz(seed=3, budget=4, artifact_dir=tmp_path)
    assert first.as_dict()["checks"] == second.as_dict()["checks"]
    assert first.ledger.report()["instances"] == second.ledger.report()["instances"]


def test_check_instance_reports_which_stages_ran():
    instance = generate(ScenarioSpec(), seed=1)
    ran = check_instance(instance, FuzzConfig(check_approx=False))
    assert ran["exact-dp"] == 1
    assert ran["float64"] == 1
    assert ran["approx"] == 0
    # A restricted backend list gates the corresponding stages.
    ran = check_instance(
        instance,
        FuzzConfig(
            backends=("float64",),
            check_circuit=False,
            check_batch=False,
            check_approx=False,
        ),
    )
    assert ran["interval"] == 0
    assert ran["auto"] == 0
    assert ran["circuit"] == 0


def test_check_instance_skips_enumeration_above_the_edge_bound():
    instance = generate(
        ScenarioSpec(kinds="mixed", depth="deep", fanout="wide"), seed=2
    )
    config = FuzzConfig(max_enum_edges=0, check_approx=False)
    ran = check_instance(instance, config)
    assert ran["enum"] == 0


def test_fuzz_config_from_backends():
    config = FuzzConfig.from_backends(["float64", "approx"])
    assert config.backends == ("float64",)
    assert config.check_approx and not config.check_circuit
    assert FuzzConfig.from_backends(["all"]).check_batch
    assert FuzzConfig.from_backends(None).backends == (
        "float64", "interval", "auto"
    )
    with pytest.raises(ValueError, match="unknown backend"):
        FuzzConfig.from_backends(["quantum"])


# -- shrinking and artifacts --------------------------------------------------

def test_shrink_resets_irrelevant_axes_to_simplest():
    spec = ScenarioSpec(kinds="mixed", depth="deep", fanout="wide",
                        mass="extreme", constraint="cformula",
                        aggregate="sum")
    minimal = shrink_spec(
        spec, 7, lambda s, seed: s.mass == "extreme" and s.depth == "deep"
    )
    assert minimal == ScenarioSpec(depth="deep", mass="extreme")
    for axis in ("kinds", "fanout", "constraint", "aggregate"):
        assert getattr(minimal, axis) == AXES[axis][0]


def test_shrink_keeps_an_already_minimal_spec():
    spec = ScenarioSpec()
    assert shrink_spec(spec, 0, lambda s, seed: True) == spec


def test_artifact_round_trip(tmp_path):
    failure = FuzzFailure(
        spec=ScenarioSpec(depth="deep", mass="extreme"),
        seed=11,
        stage="float64",
        detail="output 1 drifted",
        original_spec=ScenarioSpec(depth="deep", mass="extreme",
                                   constraint="cformula"),
    )
    path = write_artifact(failure, tmp_path)
    assert failure.artifact_path == str(path)
    data = json.loads(path.read_text())
    assert data["schema"] == "pxdb-fuzz-failure/1"
    assert data["stage"] == "float64"
    assert "repro" in data["reproduce"] and str(path) in data["reproduce"]
    assert "<" in data["pdocument_xml"]
    specs, seed = load_spec_file(path)
    assert specs == [failure.spec]
    assert seed == 11


def test_load_spec_file_accepts_plain_specs_and_lists(tmp_path):
    single = tmp_path / "one.json"
    single.write_text(json.dumps({"kinds": "mux", "depth": "deep"}))
    specs, seed = load_spec_file(single)
    assert specs == [ScenarioSpec(kinds="mux", depth="deep")] and seed is None

    many = tmp_path / "many.json"
    many.write_text(json.dumps([{"kinds": "ind"}, {"kinds": "exp"}]))
    specs, _ = load_spec_file(many)
    assert [s.kinds for s in specs] == ["ind", "exp"]


def test_injected_disagreement_is_shrunk_and_persisted(tmp_path, monkeypatch):
    import repro.workloads.fuzz as fuzz_module

    real_check = fuzz_module.check_instance

    def broken_check(instance, config=None, metrics=None):
        if instance.spec.mass == "extreme":
            raise FuzzDisagreement("float64", "injected for the test")
        return real_check(instance, config, metrics)

    monkeypatch.setattr(fuzz_module, "check_instance", broken_check)
    metrics = Metrics()
    spec = ScenarioSpec(kinds="mixed", depth="deep", mass="extreme",
                        constraint="atmost", aggregate="boolean")
    report = fuzz_module.run_fuzz(
        specs=[spec], seed=5, budget=1, artifact_dir=tmp_path, metrics=metrics
    )
    assert report.disagreements == 1
    assert metrics.counter("fuzz.disagreements") == 1
    failure = report.failures[0]
    # Every axis irrelevant to the (injected) failure shrank to simplest.
    assert failure.spec == ScenarioSpec(mass="extreme")
    assert failure.stage == "float64"
    artifacts = list(tmp_path.glob("fuzz-*.json"))
    assert len(artifacts) == 1
    assert json.loads(artifacts[0].read_text())["spec"]["mass"] == "extreme"


# -- perturbation helper ------------------------------------------------------

def test_perturb_parameters_keeps_documents_valid():
    for spec_index, spec in enumerate(standard_matrix()[:6]):
        instance = generate(spec, seed=spec_index)
        rng = random.Random(spec_index)
        perturbed = perturb_parameters(instance.pdoc, rng)
        perturbed.validate()
        assert perturbed is not instance.pdoc
        # The original is untouched.
        again = generate(spec, seed=spec_index)
        assert parameter_values(instance.pdoc) == parameter_values(again.pdoc)
        # Exp distributions still sum to exactly 1.
        for node in perturbed.nodes():
            if node.subsets:
                assert sum(w for _, w in node.subsets) == 1


# -- satellite: the previously unfuzzed differential edges --------------------

@pytest.mark.parametrize("seed", [0, 1])
def test_approx_interval_contains_exact_on_generated_aggregates(seed):
    """Approx tier vs exact enumeration on generated SUM/AVG events —
    the NP-hard side (Proposition 7.2) where the DP offers no reference."""
    spec = ScenarioSpec(kinds="mux", mass="skewed", constraint="atmost",
                        aggregate="sum")
    instance = generate(spec, seed)
    assert instance.dist_edges() <= DEFAULT_MAX_ENUM_EDGES
    condition = instance.condition
    exact = naive_probabilities(
        instance.pdoc,
        [condition] + [
            conjunction([condition, event]) for event in instance.hard_events
        ],
    )
    assert exact[0] > 0
    pxdb = PXDB(instance.pdoc, instance.constraints)
    for offset, event in enumerate(instance.hard_events):
        reference = exact[1 + offset] / exact[0]
        result = pxdb.approx_probability(
            event, epsilon=0.25, delta=1e-6, max_samples=400,
            seed=seed * 97 + offset,
        )
        assert result.lo <= float(reference) <= result.hi


def test_scheduler_heterogeneous_batch_identity_on_generated_workload():
    """BatchScheduler + batch_payloads on a *generated* mixed workload
    returns payloads identical to sequential evaluation."""
    instance = generate(
        ScenarioSpec(kinds="mixed", depth="deep", fanout="wide",
                     mass="skewed", constraint="atmost"),
        seed=4,
    )
    store = DocumentStore()
    store.add("gen", PXDB(instance.pdoc, instance.constraints))
    entry = store.get("gen")
    queries = ["r//$*", "$*"]
    requests = [
        {"op": "sat"},
        {"op": "query", "query_text": queries[0]},
        {"op": "topk", "query_text": queries[0], "k": 2},
        {"op": "query", "query_text": queries[1]},
        {"op": "sat"},
    ]
    scheduler = BatchScheduler(
        lambda db, batch: batch_payloads(entry, batch),
        window=0.02,
        max_batch=8,
    )
    try:
        futures = [
            scheduler.submit("gen", dict(request)) for request in requests
        ]
        batched = [future.result(timeout=30) for future in futures]
    finally:
        scheduler.close()
    fresh_store = DocumentStore()
    fresh_store.add("gen", PXDB(instance.pdoc.clone(), instance.constraints))
    fresh = fresh_store.get("gen")
    expected = [
        sat_payload(fresh),
        query_payload(fresh, queries[0], coalesce=False),
        topk_payload(fresh, queries[0], 2, coalesce=False),
        query_payload(fresh, queries[1], coalesce=False),
        sat_payload(fresh),
    ]
    assert json.dumps(batched, sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


@pytest.mark.parametrize("spec", [
    ScenarioSpec(kinds="ind", depth="deep", mass="reestimated"),
    ScenarioSpec(kinds="exp", fanout="wide", mass="skewed"),
    ScenarioSpec(kinds="mixed", depth="deep", fanout="wide",
                 aggregate="ratio"),
], ids=lambda s: s.name)
def test_circuit_rebind_after_generated_perturbations(spec):
    """rebind() on a parameter-perturbed generated document equals a
    fresh exact DP pass over the perturbed document."""
    instance = generate(spec, seed=6)
    condition = instance.condition
    formulas = [condition] + [
        conjunction([condition, event]) for event in instance.dp_events
    ]
    circuit = compile_formulas(instance.pdoc, formulas)
    assert circuit.forward() == probabilities(instance.pdoc, formulas)
    rng = random.Random(99)
    for _ in range(3):
        perturbed = perturb_parameters(instance.pdoc, rng)
        rebound = circuit.rebind(perturbed)
        assert rebound.forward() == probabilities(perturbed, formulas)
        # float64 forward of the rebound circuit stays within tolerance.
        exact = probabilities(perturbed, formulas)
        for value, reference in zip(
            rebound.forward(backend="float64"), exact
        ):
            target = float(reference)
            assert value == pytest.approx(target, rel=1e-9, abs=1e-12)
