"""Unit tests for the generic tree algorithms (Section 2.1 vocabulary)."""

from __future__ import annotations

import pytest

from repro.xmltree import tree
from repro.xmltree.document import DocNode, Document, doc


@pytest.fixture()
def sample():
    #         r
    #       / | \
    #      a  b  c
    #     / \     \
    #    d   e     f
    r = doc("r", doc("a", "d", "e"), "b", doc("c", "f"))
    return Document(r)


def _labels(nodes):
    return [n.label for n in nodes]


def test_preorder(sample):
    assert _labels(tree.preorder(sample.root)) == ["r", "a", "d", "e", "b", "c", "f"]


def test_postorder(sample):
    assert _labels(tree.postorder(sample.root)) == ["d", "e", "a", "b", "f", "c", "r"]


def test_bfs_order(sample):
    assert _labels(tree.bfs_order(sample.root)) == ["r", "a", "b", "c", "d", "e", "f"]


def test_ancestors_include_self(sample):
    d = sample.find("d")
    assert _labels(tree.ancestors(d)) == ["d", "a", "r"]


def test_proper_ancestors_exclude_self(sample):
    d = sample.find("d")
    assert _labels(tree.proper_ancestors(d)) == ["a", "r"]


def test_descendants_include_self(sample):
    a = sample.find("a")
    assert sorted(_labels(tree.descendants(a))) == ["a", "d", "e"]


def test_proper_descendants(sample):
    a = sample.find("a")
    assert sorted(_labels(tree.proper_descendants(a))) == ["d", "e"]


def test_is_ancestor_reflexive(sample):
    a = sample.find("a")
    assert tree.is_ancestor(a, a)
    assert not tree.is_proper_ancestor(a, a)


def test_is_proper_ancestor(sample):
    r, d = sample.root, sample.find("d")
    assert tree.is_proper_ancestor(r, d)
    assert not tree.is_proper_ancestor(d, r)


def test_root_of(sample):
    assert tree.root_of(sample.find("f")) is sample.root


def test_depth(sample):
    assert tree.depth(sample.root) == 0
    assert tree.depth(sample.find("d")) == 2


def test_subtree_size(sample):
    assert tree.subtree_size(sample.root) == 7
    assert tree.subtree_size(sample.find("a")) == 3
    assert tree.subtree_size(sample.find("b")) == 1


def test_leaves(sample):
    assert sorted(_labels(tree.leaves(sample.root))) == ["b", "d", "e", "f"]


def test_path_between(sample):
    path = tree.path_between(sample.root, sample.find("d"))
    assert _labels(path) == ["r", "a", "d"]


def test_path_between_self(sample):
    a = sample.find("a")
    assert tree.path_between(a, a) == [a]


def test_path_between_rejects_non_ancestor(sample):
    with pytest.raises(ValueError):
        tree.path_between(sample.find("b"), sample.find("d"))


def test_lowest_common_ancestor(sample):
    d, e = sample.find("d"), sample.find("e")
    assert tree.lowest_common_ancestor(d, e).label == "a"
    f = sample.find("f")
    assert tree.lowest_common_ancestor(d, f).label == "r"


def test_lca_of_node_with_itself(sample):
    d = sample.find("d")
    assert tree.lowest_common_ancestor(d, d) is d


def test_lca_rejects_disjoint_trees(sample):
    other = DocNode("x")
    with pytest.raises(ValueError):
        tree.lowest_common_ancestor(sample.root, other)
