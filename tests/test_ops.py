"""Unit tests for the comparison-operator module (Def 2.2 / Section 5)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import ops


def test_normalize_aliases():
    assert ops.normalize("==") == ops.EQ
    assert ops.normalize("=") == ops.EQ
    assert ops.normalize("<>") == ops.NE
    assert ops.normalize("≠") == ops.NE
    assert ops.normalize("≤") == ops.LE
    assert ops.normalize("≥") == ops.GE
    with pytest.raises(ValueError):
        ops.normalize("~=")


@pytest.mark.parametrize(
    "op,left,right,expected",
    [
        ("=", 3, 3, True),
        ("=", 3, 4, False),
        ("!=", 3, 4, True),
        ("<", 3, 4, True),
        ("<=", 4, 4, True),
        (">", 4, 3, True),
        (">=", 3, 4, False),
    ],
)
def test_apply(op, left, right, expected):
    assert ops.apply(op, left, right) is expected


def test_apply_with_fractions():
    assert ops.apply("<", Fraction(1, 3), Fraction(1, 2))
    assert ops.apply("=", Fraction(2, 4), Fraction(1, 2))


def test_complement_is_involutive():
    for op in ops.ALL_OPS:
        assert ops.complement(ops.complement(op)) == op


def test_complement_pairs():
    assert ops.complement("=") == "!="
    assert ops.complement("<") == ">="
    assert ops.complement(">") == "<="


@pytest.mark.parametrize("op", ops.ALL_OPS)
@pytest.mark.parametrize("bound", [-2, 0, 1, 3])
@pytest.mark.parametrize("true_count", [0, 1, 2, 3, 4, 5, 9])
def test_compare_saturated_is_exact(op, bound, true_count):
    """For the cap used by the evaluator (max(0, N) + 1), comparing the
    saturated count must equal comparing the true count — exhaustively."""
    cap = max(0, bound) + 1
    saturated = min(true_count, cap)
    assert ops.compare_saturated(saturated, cap, op, bound) == ops.apply(
        op, true_count, bound
    )
