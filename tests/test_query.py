"""Tests for queries (Section 2.4) and query evaluation EVAL⟨Q,C⟩ (Sec 4/5)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.baseline.naive import conditional_world_distribution
from repro.core.constraints import always
from repro.core.formulas import CountAtom, TRUE
from repro.core.pxdb import PXDB
from repro.core.query import Query, selector
from repro.core.query_eval import (
    boolean_query_probability,
    candidate_tuples,
    decode_answers,
    evaluate_query,
)
from repro.pdoc.pdocument import PNode, pdocument
from repro.workloads.random_gen import random_pdocument
from repro.xmltree.document import Document, doc
from repro.xmltree.parser import parse_boolean_pattern


@pytest.fixture()
def library():
    return Document(
        doc(
            "library",
            doc("shelf", doc("book", doc("title", "A")), doc("book", doc("title", "B"))),
            doc("shelf", doc("book", doc("title", "C"))),
        )
    )


def test_deterministic_answers(library):
    q = Query.parse("library/shelf/book/title/$*")
    assert q.answer_labels(library) == {("A",), ("B",), ("C",)}


def test_multi_projection_answers(library):
    q = Query.parse("library/$1:shelf/book/title/$2:*")
    labels = q.answer_labels(library)
    assert labels == {("shelf", "A"), ("shelf", "B"), ("shelf", "C")}
    assert len(q.answers(library)) == 3  # distinct shelf nodes


def test_query_parse_requires_projection():
    with pytest.raises(ValueError):
        Query.parse("a/b")


def test_query_alpha_filters_answers(library):
    # shelves whose subtree has >= 2 books
    base = Query.parse("library/$shelf")
    pattern, node = base.pattern, base.projection[0]
    two_books = CountAtom([selector("*/$book")], ">=", 2)
    q = Query(pattern, [node], alpha={id(node): two_books})
    answers = q.answers(library)
    assert len(answers) == 1


def naive_query_eval(query, pdoc, condition=TRUE):
    """Ground truth: per-tuple probabilities over the conditional worlds."""
    dist = conditional_world_distribution(pdoc, condition)
    table = {}
    for uids, p in dist.items():
        document = pdoc.document_from_uids(uids)
        for answer in query.answers(document):
            key = tuple(node.uid for node in answer)
            table[key] = table.get(key, Fraction(0)) + p
    return table


def simple_pdoc():
    pd, root = pdocument("library")
    shelf = root.ordinary("shelf")
    books = shelf.ind()
    b1 = PNode("ord", "book")
    b1.ordinary("title").ordinary("A")
    books.add_edge(b1, Fraction(1, 2))
    b2 = PNode("ord", "book")
    b2.ordinary("title").ordinary("B")
    books.add_edge(b2, Fraction(1, 4))
    pd.validate()
    return pd


def test_candidate_tuples_from_skeleton():
    pd = simple_pdoc()
    q = Query.parse("library/shelf/book/title/$*")
    assert len(candidate_tuples(q, pd)) == 2


def test_query_eval_unconditioned():
    pd = simple_pdoc()
    q = Query.parse("library/shelf/$book")
    table = evaluate_query(q, pd)
    assert sorted(table.values()) == [Fraction(1, 4), Fraction(1, 2)]
    assert table == naive_query_eval(q, pd)


def test_query_eval_conditioned():
    pd = simple_pdoc()
    # constraint: the shelf has at least one book
    c = always(selector("library/$shelf"), selector("*/$book"), ">=", 1)
    condition = c.to_cformula()
    q = Query.parse("library/shelf/$book")
    table = evaluate_query(q, pd, condition)
    assert table == naive_query_eval(q, pd, condition)
    # conditioning raises both probabilities
    assert all(v > Fraction(1, 4) for v in table.values())


def test_query_eval_keeps_zero_when_asked():
    pd = simple_pdoc()
    # bind to an impossible combination: both books with a 'C' title
    q = Query.parse("library/shelf/book/title/$C")
    table = evaluate_query(q, pd, keep_zero=True)
    assert table == {}


def test_query_eval_multi_projection_matches_naive():
    rng = random.Random(13)
    for _ in range(15):
        pd = random_pdocument(rng, max_nodes=7)
        q = Query.parse("$1:*//$2:*")
        assert evaluate_query(q, pd, keep_zero=False) == {
            k: v for k, v in naive_query_eval(q, pd).items() if v > 0
        }


def test_boolean_query_probability_equals_event():
    pd = simple_pdoc()
    pattern = parse_boolean_pattern("library/shelf/book")
    c = always(selector("library/$shelf"), selector("*/$book"), "<=", 1)
    value = boolean_query_probability(pattern, pd, c.to_cformula())
    db = PXDB(pd, [c])
    from repro.core.formulas import exists

    assert value == db.event_probability(exists(pattern))


def test_decode_answers():
    pd = simple_pdoc()
    q = Query.parse("library/shelf/book/title/$*")
    table = evaluate_query(q, pd)
    decoded = decode_answers(table, pd)
    assert decoded == {("A",): Fraction(1, 2), ("B",): Fraction(1, 4)}


def test_inconsistent_condition_rejected():
    pd = simple_pdoc()
    c = always(selector("$library"), selector("*//$book"), ">=", 5)
    with pytest.raises(ValueError):
        evaluate_query(Query.parse("library/$shelf"), pd, c.to_cformula())
