"""Unit tests for documents (Section 2.2) and their serialization."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.xmltree.document import DocNode, Document, canonical_key, doc
from repro.xmltree.serialize import document_from_xml, document_to_xml


def test_doc_builder_shapes():
    root = doc("r", doc("a", "d"), "b")
    assert root.label == "r"
    assert [c.label for c in root.children] == ["a", "b"]
    assert root.children[0].children[0].label == "d"


def test_add_child_rejects_reparenting():
    a, b = DocNode("a"), DocNode("b")
    a.add_child(b)
    with pytest.raises(ValueError):
        DocNode("c").add_child(b)


def test_uids_are_unique():
    nodes = [DocNode("x") for _ in range(100)]
    assert len({n.uid for n in nodes}) == 100


def test_explicit_uid_preserved():
    node = DocNode("x", uid=12345)
    assert node.uid == 12345


def test_size_and_nodes():
    d = Document(doc("r", doc("a", "b"), "c"))
    assert d.size() == 4
    assert [n.label for n in d.nodes()] == ["r", "a", "b", "c"]


def test_subtree_view():
    d = Document(doc("r", doc("a", "b")))
    a = d.find("a")
    sub = d.subtree(a)
    assert sub.size() == 2
    assert sub.root is a


def test_find_rejects_ambiguity():
    d = Document(doc("r", "a", "a"))
    with pytest.raises(LookupError):
        d.find("a")
    with pytest.raises(LookupError):
        d.find("missing")


def test_node_by_uid():
    d = Document(doc("r", "a"))
    a = d.find("a")
    assert d.node_by_uid(a.uid) is a
    with pytest.raises(LookupError):
        d.node_by_uid(-1)


def test_uid_set():
    d = Document(doc("r", "a"))
    assert d.uid_set() == frozenset(n.uid for n in d.nodes())


def test_copy_preserves_structure_and_uids():
    d = Document(doc("r", doc("a", "b"), "c"))
    copy = d.copy()
    assert copy == d
    assert copy.uid_set() == d.uid_set()
    assert copy.root is not d.root


def test_unordered_equality():
    left = Document(doc("r", "a", doc("b", "c")))
    right = Document(doc("r", doc("b", "c"), "a"))
    assert left == right
    assert hash(left) == hash(right)


def test_unordered_inequality_on_multiplicity():
    left = Document(doc("r", "a", "a"))
    right = Document(doc("r", "a"))
    assert left != right


def test_canonical_key_mixed_label_types():
    left = Document(doc("r", 3, "3"))
    right = Document(doc("r", "3", 3))
    assert canonical_key(left.root) == canonical_key(right.root)
    assert canonical_key(Document(doc("r", 3)).root) != canonical_key(
        Document(doc("r", "3")).root
    )


@pytest.mark.parametrize("style", ["generic", "tags"])
def test_serialization_round_trip(style):
    original = Document(
        doc("university", doc("ph.d. st.", doc("name", "David")), doc("count", 7))
    )
    text = document_to_xml(original, style=style)
    parsed = document_from_xml(text)
    assert parsed == original


def test_serialization_preserves_uids_when_asked():
    original = Document(doc("r", "a"))
    text = document_to_xml(original, keep_uids=True)
    parsed = document_from_xml(text)
    assert parsed.uid_set() == original.uid_set()


def test_serialization_numeric_labels():
    original = Document(doc("r", Fraction(3, 4), 5))
    parsed = document_from_xml(document_to_xml(original))
    labels = sorted(str(n.label) for n in parsed.nodes())
    assert labels == ["3/4", "5", "r"]
    values = {n.label for n in parsed.nodes()} - {"r"}
    assert Fraction(3, 4) in values and 5 in values


def test_tags_style_falls_back_for_odd_labels():
    original = Document(doc("r", "ph.d. st."))
    text = document_to_xml(original, style="tags")
    assert "ph.d. st." in text
    assert document_from_xml(text) == original


def test_unknown_style_rejected():
    with pytest.raises(ValueError):
        document_to_xml(Document(doc("r")), style="fancy")
