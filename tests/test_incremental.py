"""Tests for the incremental evaluation engine and the sampler hot path.

The engine is a pure evaluation-sharing optimization, so every test here
is an equivalence test at heart: warm-cache results must equal cold
results exactly (Fractions), the incremental sampler must draw the very
same documents as from-scratch evaluation under the same seed, and its
empirical distribution must agree with the rejection baseline's.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from scipy import stats

from repro.baseline.rejection import rejection_sample
from repro.core.compiler import Registry
from repro.core.constraints import constraints_formula
from repro.core.evaluator import Evaluation, IncrementalEngine, probability
from repro.core.formulas import CountAtom, SFormula, exists
from repro.core.pxdb import PXDB
from repro.core.sampler import deterministic_instance, sample
from repro.pdoc.pdocument import EXP, ORD, PDocument, PNode, pdocument
from repro.workloads.random_gen import random_formula, random_pdocument
from repro.workloads.university import (
    figure1_constraints,
    figure1_pdocument,
    scaled_university,
)
from repro.xmltree.parser import parse_selector
from repro.xmltree.pattern import Pattern, PatternNode
from repro.xmltree.predicates import ANY, NodeIs


def sel(text: str) -> SFormula:
    pattern, node = parse_selector(text)
    return SFormula(pattern, node)


# -- structural fingerprints ---------------------------------------------------

def test_fingerprints_stable_across_clones():
    pdoc = figure1_pdocument()
    clone = pdoc.clone()
    assert pdoc.root.shape_fingerprint() == clone.root.shape_fingerprint()
    assert pdoc.root.identity_fingerprint() == clone.root.identity_fingerprint()


def test_shape_fingerprint_ignores_uids_identity_does_not():
    first, root1 = pdocument("r")
    root1.ind().add_edge("a", Fraction(1, 2))
    second, root2 = pdocument("r")
    root2.ind().add_edge("a", Fraction(1, 2))
    assert root1.shape_fingerprint() == root2.shape_fingerprint()
    assert root1.identity_fingerprint() != root2.identity_fingerprint()


def test_conditioning_invalidates_only_the_spine():
    fig = figure1_pdocument()
    edge = fig.dist_edges()[0]
    # Warm every fingerprint, then condition in place.
    fig.root.shape_fingerprint()
    before = {id(n): n._shape_fp for n in fig.nodes()}
    fig.condition_edge_in_place(edge, True)
    node = edge[0]
    spine_ids = set()
    current = node
    while current is not None:
        spine_ids.add(id(current))
        current = current.parent
    for n in fig.nodes():
        if id(n) in spine_ids:
            assert n._shape_fp is None
        else:
            assert n._shape_fp == before[id(n)]


def test_restore_edge_roundtrips():
    pdoc = figure1_pdocument()
    for edge in pdoc.dist_edges():
        node, index = edge
        prior = pdoc.edge_prob(node, index)
        if prior == 0 or prior == 1:
            continue
        before_fp = pdoc.root.identity_fingerprint()
        snapshot = pdoc.edge_snapshot(edge)
        pdoc.condition_edge_in_place(edge, True)
        assert pdoc.root.identity_fingerprint() != before_fp
        pdoc.restore_edge(edge, snapshot)
        assert pdoc.root.identity_fingerprint() == before_fp


def test_in_place_conditioning_matches_clone_conditioning():
    rng = random.Random(3)
    for _ in range(20):
        pdoc = random_pdocument(rng, allow_exp=True)
        formula = random_formula(rng)
        for edge in pdoc.dist_edges():
            node, index = edge
            prior = pdoc.edge_prob(node, index)
            for chosen in (True, False):
                if (chosen and prior == 0) or (not chosen and prior == 1):
                    continue
                cloned = pdoc.conditioned_on_edge(edge, chosen)
                mutable = pdoc.clone()
                mutable.condition_edge_in_place(
                    (mutable.dist_edges()[pdoc.dist_edges().index(edge)][0], index),
                    chosen,
                )
                try:
                    expected = probability(cloned, formula)
                except TypeError:
                    break  # SUM/AVG drawn: not evaluable, skip this formula
                assert probability(mutable, formula) == expected


# -- engine cache correctness --------------------------------------------------

def test_incremental_engine_matches_from_scratch_on_random_instances():
    """Warm-cache probabilities along a random conditioning chain must be
    bit-identical to independent from-scratch evaluations."""
    rng = random.Random(99)
    checked = 0
    while checked < 12:
        pdoc = random_pdocument(rng, allow_exp=True)
        formula = random_formula(rng)
        try:
            engine = IncrementalEngine.for_formula(formula)
        except TypeError:
            continue  # SUM/AVG atom: rejected by the polynomial evaluator
        current = pdoc.clone()
        assert engine.probability(current) == probability(pdoc, formula)
        for edge in current.dist_edges():
            node, index = edge
            prior = current.edge_prob(node, index)
            if prior == 0 or prior == 1:
                continue
            current.condition_edge_in_place(edge, rng.random() < 0.5 or prior == 1)
            assert engine.probability(current) == probability(current, formula)
        checked += 1


def test_identity_mode_engine_sound_for_node_predicates():
    """With a NodeIs predicate the cache must key on identity fingerprints;
    conditioned in-place versions still share unchanged subtrees soundly."""
    pdoc = scaled_university(departments=2, members=2, students=1)
    target = next(n for n in pdoc.ordinary_nodes() if n.label == "member")
    root = PatternNode(ANY)
    root.descendant(NodeIs(target.uid))
    formula = exists(Pattern(root))
    engine = IncrementalEngine.for_formula(formula)
    assert engine.identity_keys
    current = pdoc.clone()
    assert engine.probability(current) == probability(pdoc, formula)
    for edge in current.dist_edges():
        node, index = edge
        prior = current.edge_prob(node, index)
        if prior == 0 or prior == 1:
            continue
        current.condition_edge_in_place(edge, True)
        assert engine.probability(current) == probability(current, formula)
    assert engine.hits > 0  # sharing actually happened across runs


def test_engine_shares_work_across_runs():
    pdoc = scaled_university(departments=3, members=2, students=1)
    condition = constraints_formula(figure1_constraints())
    engine = IncrementalEngine.for_formula(condition)
    first = engine.probability(pdoc)
    cold_nodes = engine.nodes_computed
    second = engine.probability(pdoc.clone())
    assert first == second
    # The clone carries the same fingerprints: the second run recomputes
    # nothing below the root.
    assert engine.nodes_computed == cold_nodes
    assert engine.stats()["runs"] == 2


# -- sampler equivalence -------------------------------------------------------

def test_incremental_sampler_draws_identical_documents():
    """Same seed => same documents with and without the warm cache: the
    engine may never change which Bernoulli outcomes are drawn."""
    rng = random.Random(21)
    for _ in range(6):
        pdoc = random_pdocument(rng, allow_exp=True)
        condition = CountAtom([sel("*//$a")], ">=", 0)  # always satisfiable
        seed = rng.randrange(10**9)
        engine = IncrementalEngine.for_formula(condition)
        warm = [
            sample(pdoc, condition, random.Random(seed + i), engine=engine)
            for i in range(3)
        ]
        cold = [
            sample(pdoc, condition, random.Random(seed + i), incremental=False)
            for i in range(3)
        ]
        assert [d.uid_set() for d in warm] == [d.uid_set() for d in cold]


def test_sampler_matches_rejection_baseline_distribution():
    """Seeded two-sample check: the incremental sampler's empirical
    distribution agrees with the rejection baseline's on a small PXDB."""
    pd, root = pdocument("r")
    ind = root.ind()
    ind.add_edge("a", Fraction(1, 2))
    ind.add_edge("b", Fraction(1, 2))
    mux = root.mux()
    mux.add_edge("c", Fraction(1, 3))
    mux.add_edge("d", Fraction(1, 3))
    pd.validate()
    condition = CountAtom([sel("r/$a"), sel("r/$c")], ">=", 1)

    n = 1500
    rng = random.Random(123)
    engine = IncrementalEngine.for_formula(condition)
    from collections import Counter

    incr = Counter(
        sample(pd, condition, rng, engine=engine).uid_set() for _ in range(n)
    )
    rej = Counter(
        rejection_sample(pd, condition, rng)[0].uid_set() for _ in range(n)
    )
    worlds = sorted(set(incr) | set(rej), key=sorted)
    table = [[incr.get(w, 0) for w in worlds], [rej.get(w, 0) for w in worlds]]
    _, p_value, _, _ = stats.chi2_contingency(table)
    assert p_value > 1e-4, f"sampler vs rejection distributions differ (p={p_value})"


def test_pxdb_engine_persists_across_samples():
    db = PXDB(figure1_pdocument(), figure1_constraints())
    rng = random.Random(4)
    db.sample(rng)
    runs_first = db.sample_engine.stats()["runs"]
    db.sample(rng)
    second = db.sample_engine.stats()
    assert second["runs"] > runs_first  # same engine object, still counting
    assert second["cache_hits"] > 0


# -- satellite regressions -----------------------------------------------------

def test_sample_enumerates_dist_edges_once(monkeypatch):
    """O(m^2) regression: the loop must not rebuild the edge list per edge."""
    calls = {"n": 0}
    original = PDocument.dist_edges

    def counting(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(PDocument, "dist_edges", counting)
    sample(figure1_pdocument(), rng=random.Random(0))
    assert calls["n"] == 1


def test_sample_leaves_caller_pdocument_untouched():
    pdoc = figure1_pdocument()
    before = [(list(n.probs), list(n.subsets)) for n in pdoc.nodes()]
    sample(pdoc, constraints_formula(figure1_constraints()), random.Random(11))
    after = [(list(n.probs), list(n.subsets)) for n in pdoc.nodes()]
    assert before == after


def test_deterministic_instance_zero_probability_exp_subsets():
    """Regression: an exp node whose subsets all have probability 0 must
    raise the documented ValueError, not a bare IndexError."""
    root = PNode(ORD, "r")
    exp = PNode(EXP)
    root._attach(exp)
    exp._attach(PNode(ORD, "a"))
    exp.subsets = [(frozenset({0}), Fraction(0)), (frozenset(), Fraction(0))]
    with pytest.raises(ValueError, match="not fully determined"):
        deterministic_instance(PDocument(root, validate=False))


def test_evaluation_counters_are_per_run():
    """Regression: counters must describe the latest run only, not
    accumulate across repeated run() calls on the same object."""
    pdoc = scaled_university(departments=4, members=2, students=1, anonymous=True)
    condition = constraints_formula(figure1_constraints())
    from repro.aggregates.minmax import rewrite

    evaluation = Evaluation(Registry([rewrite(condition)]), pdoc)
    evaluation.run()
    first = (evaluation.cache_hits, evaluation.cache_misses, evaluation.nodes_computed)
    assert first[2] > 0
    evaluation.run()
    second = (evaluation.cache_hits, evaluation.cache_misses, evaluation.nodes_computed)
    # Not cumulative; the warm local cache makes the second run all hits.
    assert second[2] == 0
    assert second[0] <= first[0] + first[1]
    assert second[1] == 0


def test_engine_rejects_foreign_registry():
    condition = CountAtom([sel("r/$a")], ">=", 1)
    engine = IncrementalEngine.for_formula(condition)
    other = Registry([condition])
    with pytest.raises(ValueError):
        Evaluation(other, figure1_pdocument(), engine=engine)
